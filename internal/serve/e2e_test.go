package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startServer boots a full server over httptest and arranges shutdown.
func startServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	api, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := api.Manager().Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts, api
}

// submit POSTs a spec and decodes the accepted job document.
func submit(t *testing.T, ts *httptest.Server, spec string) submitDoc {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var doc submitDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	return doc
}

// await polls the status endpoint until the run is terminal.
func await(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case Done, Failed, Canceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %s (%d/%d)", id, st.State, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// results fetches the finished body verbatim.
func results(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d: %s", resp.StatusCode, body)
	}
	return body
}

func metrics(t *testing.T, ts *httptest.Server) metricsDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

const e2eSpec = `{"venue":"mall","tags":6,"seed":12345}`

// TestE2ESubmitPollFetch is the acceptance path: submit a spec, poll to
// completion, fetch per-tag results, and check the document's shape.
func TestE2ESubmitPollFetch(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 2})

	// Liveness first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	doc := submit(t, ts, e2eSpec)
	if doc.State == Failed {
		t.Fatalf("submission failed: %+v", doc)
	}
	st := await(t, ts, doc.ID)
	if st.State != Done {
		t.Fatalf("run finished %s: %s", st.State, st.Error)
	}
	if st.Done != 6 || st.Total != 6 {
		t.Fatalf("progress %d/%d, want 6/6", st.Done, st.Total)
	}

	var rd ResultDoc
	body := results(t, ts, doc.ID)
	if err := json.Unmarshal(body, &rd); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if rd.Result == nil || rd.Result.Tags != 6 || len(rd.Result.PerTag) != 6 {
		t.Fatalf("result shape: %+v", rd.Result)
	}
	if rd.Key.SpecHash != st.SpecHash || rd.Key.Seed != 12345 {
		t.Fatalf("result key %+v does not match status %+v", rd.Key, st)
	}
	if rd.Result.Throughput.N != 6 {
		t.Fatalf("aggregate over %d tags, want 6", rd.Result.Throughput.N)
	}
}

// TestE2ECacheHitByteIdentical pins the caching contract: the second
// submission of an identical (spec, seed) returns the same run body byte for
// byte and is served from the artifact store without recompute.
func TestE2ECacheHitByteIdentical(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 2})

	first := submit(t, ts, e2eSpec)
	if st := await(t, ts, first.ID); st.State != Done {
		t.Fatalf("first run %s: %s", st.State, st.Error)
	}
	firstBody := results(t, ts, first.ID)
	before := metrics(t, ts)

	// Same spec spelled differently (explicit defaults) — same cache slot.
	second := submit(t, ts, `{"venue":"mall","tags":6,"seed":12345,"traffic":"lte","hour":12}`)
	if !second.CacheHit {
		t.Fatalf("second submission was not a cache hit: %+v", second)
	}
	if second.State != Done {
		t.Fatalf("cache-hit job born %s, want done", second.State)
	}
	secondBody := results(t, ts, second.ID)
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("cache hit served different bytes:\n%s\nvs\n%s", firstBody, secondBody)
	}

	after := metrics(t, ts)
	if after.Jobs.Computed != before.Jobs.Computed {
		t.Fatalf("cache hit recomputed: computed %d -> %d", before.Jobs.Computed, after.Jobs.Computed)
	}
	if after.Jobs.CacheHits != before.Jobs.CacheHits+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before.Jobs.CacheHits, after.Jobs.CacheHits)
	}
	if after.Store.Hits == 0 {
		t.Fatal("store recorded no hits")
	}

	// A different seed is a different computation.
	third := submit(t, ts, `{"venue":"mall","tags":6,"seed":54321}`)
	if third.CacheHit {
		t.Fatal("different seed reported a cache hit")
	}
	if st := await(t, ts, third.ID); st.State != Done {
		t.Fatalf("third run %s: %s", st.State, st.Error)
	}
	if bytes.Equal(firstBody, results(t, ts, third.ID)) {
		t.Fatal("different seed produced identical bytes")
	}
}

// TestE2EWorkerCountIndependence runs the same spec on servers with
// different worker counts (both the job pool and the per-job tag pool) and
// requires byte-identical result bodies.
func TestE2EWorkerCountIndependence(t *testing.T) {
	configs := []Options{
		{Workers: 1, JobWorkers: 1},
		{Workers: 2, JobWorkers: 3},
		{Workers: 4, JobWorkers: 8},
	}
	var bodies [][]byte
	for _, opts := range configs {
		ts, _ := startServer(t, opts)
		doc := submit(t, ts, e2eSpec)
		if st := await(t, ts, doc.ID); st.State != Done {
			t.Fatalf("workers=%+v: run %s: %s", opts, st.State, st.Error)
		}
		bodies = append(bodies, results(t, ts, doc.ID))
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("result bytes differ between worker configs %+v and %+v:\n%s\nvs\n%s",
				configs[0], configs[i], bodies[0], bodies[i])
		}
	}
}

// TestE2EExactModeRun exercises the bit-true chain through the API at the
// narrowest bandwidth, mild impairment ladder rung included.
func TestE2EExactModeRun(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 1, JobWorkers: 2})
	doc := submit(t, ts, `{"mode":"exact","bandwidth":"1.4MHz","tags":2,"subframes":2,"impairment":"mild","max_tag_to_ue_ft":6,"seed":3}`)
	st := await(t, ts, doc.ID)
	if st.State != Done {
		t.Fatalf("exact run %s: %s", st.State, st.Error)
	}
	var rd ResultDoc
	if err := json.Unmarshal(results(t, ts, doc.ID), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Result.SyncedTags == 0 {
		t.Fatal("no tag synced in the close-range exact run")
	}
}

// TestE2EErrorPaths covers the API's failure statuses.
func TestE2EErrorPaths(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 1})

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{"venue":"moon"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad venue: %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"venu":"home"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	if resp, _ := http.Get(ts.URL + "/v1/runs/run-999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Results for an unfinished (large) run: 409, then cancel and expect 410.
	doc := submit(t, ts, `{"tags":50000,"seed":9}`)
	resp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished results: %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+doc.ID, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d, want 200", cresp.StatusCode)
	}
	if st := await(t, ts, doc.ID); st.State != Canceled {
		t.Fatalf("canceled run ended %s", st.State)
	}
	gresp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusGone {
		t.Fatalf("canceled results: %d, want 410", gresp.StatusCode)
	}
}

// TestE2EListRuns checks the listing endpoint's submission order.
func TestE2EListRuns(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		doc := submit(t, ts, fmt.Sprintf(`{"tags":2,"seed":%d}`, i))
		ids = append(ids, doc.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Runs []JobStatus `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 3 {
		t.Fatalf("listed %d runs, want 3", len(doc.Runs))
	}
	for i, st := range doc.Runs {
		if st.ID != ids[i] {
			t.Fatalf("listing order %v does not match submission order %v", doc.Runs, ids)
		}
	}
}
