package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"lscatter/internal/experiments"
)

// The tests in this file pin the SSE streaming contract on
// GET /v1/runs/{id}/events: one progress event per finished tag, exactly one
// trailing end event whose ETag matches the results endpoint, and complete
// isolation of the producing job from slow or vanishing consumers.

// sseEvent is a parsed "event:"/"data:" frame.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes a stream until its end event (or EOF) and returns the
// frames in arrival order.
func readSSE(t *testing.T, body *bufio.Reader) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return evs
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Type != "" {
				evs = append(evs, cur)
				if cur.Type == "end" {
					return evs
				}
				cur = sseEvent{}
			}
		}
	}
}

func streamEvents(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	return evs(t, resp)
}

func evs(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	return readSSE(t, bufio.NewReader(resp.Body))
}

// TestSSEStreamOrdering subscribes before the run finishes and checks the
// full event grammar: progress rows with monotonically nondecreasing done
// counts, every tag reported exactly once, then exactly one end event, last.
func TestSSEStreamOrdering(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 1, JobWorkers: 1})
	doc := submit(t, ts, `{"tags":6,"seed":4242}`)

	events := streamEvents(t, ts.URL+"/v1/runs/"+doc.ID+"/events")
	if len(events) != 7 {
		t.Fatalf("streamed %d events for a 6-tag run, want 6 progress + 1 end: %+v", len(events), events)
	}
	seen := map[int]bool{}
	prevDone := 0
	for i, ev := range events[:6] {
		if ev.Type != "progress" {
			t.Fatalf("event %d is %q, want progress", i, ev.Type)
		}
		var p struct {
			Done  int                    `json:"done"`
			Total int                    `json:"total"`
			Tag   *experiments.TagReport `json:"tag"`
		}
		if err := json.Unmarshal([]byte(ev.Data), &p); err != nil {
			t.Fatalf("event %d payload: %v\n%s", i, err, ev.Data)
		}
		if p.Total != 6 {
			t.Fatalf("event %d total %d, want 6", i, p.Total)
		}
		if p.Done < prevDone {
			t.Fatalf("done went backwards: %d after %d", p.Done, prevDone)
		}
		prevDone = p.Done
		if p.Tag == nil {
			t.Fatalf("event %d carries no tag report", i)
		}
		if seen[p.Tag.Tag] {
			t.Fatalf("tag %d reported twice", p.Tag.Tag)
		}
		seen[p.Tag.Tag] = true
	}
	if prevDone != 6 {
		t.Fatalf("final progress done %d, want 6", prevDone)
	}
	if len(seen) != 6 {
		t.Fatalf("%d distinct tags reported, want 6", len(seen))
	}

	last := events[6]
	if last.Type != "end" {
		t.Fatalf("final event is %q, want end", last.Type)
	}
	var end endEvent
	if err := json.Unmarshal([]byte(last.Data), &end); err != nil {
		t.Fatal(err)
	}
	if end.State != Done {
		t.Fatalf("end event state %s: %s", end.State, end.Error)
	}

	// The end event's ETag is the results endpoint's ETag: an SSE client can
	// fetch the body it was told about without another status poll.
	resp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); got == "" || got != end.ETag {
		t.Fatalf("results ETag %q != end event ETag %q", got, end.ETag)
	}
}

// TestSSELateSubscriberReplaysBacklog attaches after the run is already done
// and must still receive the full stream tail, terminated by the end event.
func TestSSELateSubscriberReplaysBacklog(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 1})
	doc := submit(t, ts, `{"tags":4,"seed":11}`)
	if st := await(t, ts, doc.ID); st.State != Done {
		t.Fatalf("run ended %s", st.State)
	}

	events := streamEvents(t, ts.URL+"/v1/runs/"+doc.ID+"/events")
	if len(events) != 5 {
		t.Fatalf("late subscriber got %d events, want 4 progress + 1 end", len(events))
	}
	if events[4].Type != "end" {
		t.Fatalf("late subscriber's last event is %q", events[4].Type)
	}
}

// TestSSESlowConsumerNeverStallsJob opens a stream and refuses to read it
// while the run executes. The job must finish on its own schedule; only then
// does the consumer drain the backlog.
func TestSSESlowConsumerNeverStallsJob(t *testing.T) {
	ts, api := startServer(t, Options{Workers: 1, JobWorkers: 2})
	doc := submit(t, ts, `{"tags":400,"seed":5}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Do not touch resp.Body until the run is terminal. 400 tags of progress
	// rows overflow any socket buffer a blocked handler could hide behind, so
	// this only passes when appends never wait on consumers.
	job, _ := api.Manager().Get(doc.ID)
	select {
	case <-job.Finished():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish while an unread SSE stream was attached")
	}
	if st := job.Status(); st.State != Done {
		t.Fatalf("run ended %s: %s", st.State, st.Error)
	}

	events := evs(t, resp)
	if len(events) == 0 || events[len(events)-1].Type != "end" {
		t.Fatalf("slow consumer drained %d events, last %+v", len(events), events[len(events)-1])
	}
}

// TestSSEDisconnectNeverCancelsJob kills the stream mid-run; the run must
// complete as if nobody had been watching.
func TestSSEDisconnectNeverCancelsJob(t *testing.T) {
	ts, api := startServer(t, Options{Workers: 1, JobWorkers: 1})
	doc := submit(t, ts, `{"tags":2000,"seed":6}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Read a single byte to prove the stream was live, then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("stream never produced: %v", err)
	}
	resp.Body.Close()

	job, _ := api.Manager().Get(doc.ID)
	select {
	case <-job.Finished():
	case <-time.After(60 * time.Second):
		t.Fatal("run did not finish after its SSE consumer disconnected")
	}
	if st := job.Status(); st.State != Done {
		t.Fatalf("run ended %s after consumer disconnect: %s", st.State, st.Error)
	}
}

// TestSSEUnknownRun404s checks the error path.
func TestSSEUnknownRun404s(t *testing.T) {
	ts, _ := startServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/runs/run-424242/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run events: %d, want 404", resp.StatusCode)
	}
}
