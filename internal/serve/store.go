package serve

import (
	"container/list"
	"sync"
)

// Key addresses one artifact in the Store: the content hash of the
// normalized spec plus the seed. Identical keys denote identical
// computations — the deployment runner is deterministic in (spec, seed) — so
// a stored body can be served for any later request with the same key
// without recompute, byte for byte.
type Key struct {
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
}

// Store is the bounded in-memory content-addressed artifact store. Values
// are the finished result bodies (JSON documents) exactly as they are served
// to clients. Eviction is LRU by access so a hot spec survives a sweep of
// one-off requests.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions uint64
	bytes                   int64
}

type storeEntry struct {
	key  Key
	body []byte
}

// NewStore builds a store bounded to max entries; max <= 0 selects a
// default of 256.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 256
	}
	return &Store{
		max:     max,
		entries: make(map[Key]*list.Element),
		order:   list.New(),
	}
}

// Get returns the stored body for the key, or (nil, false). The returned
// slice is shared — callers must not mutate it.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).body, true
}

// Put stores a body under the key. A concurrent duplicate computation may
// Put the same key twice; the bodies are identical by the determinism
// contract, so the second write just refreshes recency.
func (s *Store) Put(k Key, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&storeEntry{key: k, body: body})
	s.bytes += int64(len(body))
	for len(s.entries) > s.max {
		el := s.order.Back()
		e := el.Value.(*storeEntry)
		s.order.Remove(el)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.body))
		s.evictions++
	}
}

// StoreStats is the store's observability snapshot, served at /metricsz.
type StoreStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a consistent snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:   len(s.entries),
		Bytes:     s.bytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
