package serve

import "lscatter/internal/store"

// The artifact stores are the shared internal/store layer — the same
// content-addressed store the checkpointed lscatter-bench sweeps and the
// lscatter-worker shards persist into. serve used to carry a private
// duplicate (an in-memory LRU plus a diskstore); these aliases are what
// remains of it: the wire formats (Key JSON, LSCATART files, /metricsz
// stats) are unchanged, and an artifact directory written by a PR-8 server
// is readable as-is. The durable layer's advisory file lock is what makes
// -artifact-dir safe to share between a server and sibling processes.

// Key addresses one artifact: the content hash of the normalized spec plus
// the seed. Identical keys denote identical computations — the deployment
// runner is deterministic in (spec, seed) — so a stored body can be served
// for any later request with the same key without recompute, byte for byte.
type Key = store.Key

// Store is the bounded in-memory artifact LRU over finished result bodies.
type Store = store.Memory

// StoreStats is the memory store's /metricsz snapshot.
type StoreStats = store.MemoryStats

// DiskStore is the durable artifact store under the memory LRU.
type DiskStore = store.DiskStore

// DiskStats is the disk store's /metricsz snapshot.
type DiskStats = store.DiskStats

// NewStore builds the in-memory store; max <= 0 selects a default of 256.
func NewStore(max int) *Store { return store.NewMemory(max) }

// OpenDiskStore opens (creating if needed) the durable artifact store
// rooted at dir; see store.Open for the scan, quarantine and locking
// semantics.
func OpenDiskStore(dir string, maxBytes int64, logf func(string, ...any)) (*DiskStore, error) {
	return store.Open(dir, maxBytes, logf)
}
