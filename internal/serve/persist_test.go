package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lscatter/internal/store"
)

// The tests in this file pin the manager-level halves of the durability
// story over the shared internal/store layer: warm restarts serve from disk
// with zero recompute, and corruption falls through to a fresh computation.
// The store-level crash/corruption tests live in internal/store.

// TestManagerRestartWarmCache is the in-process crash/restart e2e at the
// manager level: run a spec, shut down, build a fresh manager over the same
// artifact dir, and require the re-fetched body byte-identical with zero
// recompute and an observable disk hit.
func TestManagerRestartWarmCache(t *testing.T) {
	dir := t.TempDir()
	spec := normalized(t, 6, 12345)

	m1 := newManager(t, Options{Workers: 2, ArtifactDir: dir})
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Finished()
	body1, ok := j1.Results()
	if !ok {
		t.Fatalf("first run did not finish done: %+v", j1.Status())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The restart: a brand-new manager, cold memory, warm disk.
	m2 := newManager(t, Options{Workers: 2, ArtifactDir: dir})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m2.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	j2, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Finished()
	st := j2.Status()
	if st.State != Done || !st.CacheHit {
		t.Fatalf("restarted submission not served from disk: %+v", st)
	}
	body2, _ := j2.Results()
	if !bytes.Equal(body1, body2) {
		t.Fatalf("restart served different bytes:\n%s\nvs\n%s", body1, body2)
	}
	ctr := m2.Counters()
	if ctr.DiskHits != 1 {
		t.Fatalf("disk hits %d, want 1: %+v", ctr.DiskHits, ctr)
	}
	if ctr.Computed != 0 || ctr.Started != 0 {
		t.Fatalf("restart recomputed: %+v", ctr)
	}
	// The promoted body now also answers from memory.
	j3, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j3.Finished()
	if got := m2.Counters(); got.CacheHits != 1 {
		t.Fatalf("promotion did not warm the memory LRU: %+v", got)
	}
}

// TestManagerRecomputesAfterCorruption covers the serving-level half of the
// corruption story: a damaged artifact is quarantined and the submission
// falls through to a fresh, correct computation.
func TestManagerRecomputesAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	spec := normalized(t, 6, 777)

	m1 := newManager(t, Options{Workers: 2, ArtifactDir: dir})
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Finished()
	body1, _ := j1.Results()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the stored body.
	key := Key{SpecHash: spec.Hash(), Seed: spec.Seed}
	path := filepath.Join(dir, store.FileName(key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, Options{Workers: 2, ArtifactDir: dir})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m2.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	j2, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Finished()
	st := j2.Status()
	if st.State != Done {
		t.Fatalf("recompute ended %s: %s", st.State, st.Error)
	}
	if st.CacheHit {
		t.Fatal("corrupt artifact was served as a cache hit")
	}
	body2, _ := j2.Results()
	if !bytes.Equal(body1, body2) {
		t.Fatal("recompute after corruption produced different bytes")
	}
	ctr := m2.Counters()
	if ctr.Computed != 1 || ctr.DiskHits != 0 {
		t.Fatalf("corruption path counters: %+v", ctr)
	}
	if ds := m2.Disk().Stats(); ds.Quarantined != 1 {
		t.Fatalf("quarantined %d, want 1: %+v", ds.Quarantined, ds)
	}
}
