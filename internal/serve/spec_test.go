package serve

import (
	"strings"
	"testing"

	"lscatter/internal/core"
	"lscatter/internal/ltephy"
	"lscatter/internal/simlink"
	"lscatter/internal/traffic"
)

func decodeValid(t *testing.T, body string) *Spec {
	t.Helper()
	s, err := DecodeSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return s
}

func TestSpecDecodeRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty", ""},
		{"not json", "venue=home"},
		{"unknown field", `{"venu":"home"}`},
		{"trailing data", `{"venue":"home"} {"venue":"mall"}`},
		{"wrong type", `{"tags":"many"}`},
		{"array", `[1,2,3]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSpec(strings.NewReader(tc.body)); err == nil {
				t.Fatalf("decode %q succeeded, want error", tc.body)
			}
		})
	}
}

// TestSpecDefaulting pins the zero-vs-absent contract: absent optional
// fields take the documented defaults, explicit zeros are honored as zeros
// (the PR 5 core.Auto lesson, carried to the wire format with pointers).
func TestSpecDefaulting(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		check func(t *testing.T, n *Spec)
	}{
		{
			"all defaults",
			`{}`,
			func(t *testing.T, n *Spec) {
				if n.Venue != "home" || n.Bandwidth != "20MHz" || n.Tags != 1 ||
					n.Traffic != "lte" || n.Mode != "semi-analytic" || n.Lane != "float" ||
					n.Impairment != "off" {
					t.Fatalf("unexpected defaults: %+v", n)
				}
				if *n.TxPowerDBm != 10 || *n.TagLossDB != 4 || *n.Hour != 12 {
					t.Fatalf("pointer defaults: tx=%v loss=%v hour=%v",
						*n.TxPowerDBm, *n.TagLossDB, *n.Hour)
				}
				if *n.MinTagToUEFt != 3 || *n.MaxTagToUEFt != 15 {
					t.Fatalf("distance defaults: %v..%v", *n.MinTagToUEFt, *n.MaxTagToUEFt)
				}
			},
		},
		{
			"explicit zero tx power honored",
			`{"tx_power_dbm":0}`,
			func(t *testing.T, n *Spec) {
				if *n.TxPowerDBm != 0 {
					t.Fatalf("explicit 0 dBm became %v", *n.TxPowerDBm)
				}
				if got := n.Deployment().TxPowerDBm; got != 0 {
					t.Fatalf("deployment config tx power = %v, want 0", got)
				}
			},
		},
		{
			"explicit zero tag loss honored",
			`{"tag_loss_db":0}`,
			func(t *testing.T, n *Spec) {
				if *n.TagLossDB != 0 {
					t.Fatalf("explicit lossless tag became %v dB", *n.TagLossDB)
				}
			},
		},
		{
			"explicit midnight honored",
			`{"hour":0}`,
			func(t *testing.T, n *Spec) {
				if *n.Hour != 0 {
					t.Fatalf("explicit hour 0 became %v", *n.Hour)
				}
			},
		},
		{
			"zero seed honored verbatim",
			`{"seed":0}`,
			func(t *testing.T, n *Spec) {
				if n.Seed != 0 {
					t.Fatalf("seed 0 became %d", n.Seed)
				}
			},
		},
		{
			"venue reach defaults follow venue",
			`{"venue":"outdoor"}`,
			func(t *testing.T, n *Spec) {
				if *n.MaxTagToUEFt != 120 {
					t.Fatalf("outdoor reach default = %v, want 120", *n.MaxTagToUEFt)
				}
			},
		},
		{
			"enums case-insensitive",
			`{"venue":"Mall","mode":"EXACT","bandwidth":"1.4MHz","lane":"FXP"}`,
			func(t *testing.T, n *Spec) {
				if n.Venue != "mall" || n.Mode != "exact" || n.Lane != "fxp" {
					t.Fatalf("case folding failed: %+v", n)
				}
				d := n.Deployment()
				if d.Venue != traffic.Mall || d.Mode != core.Exact ||
					d.Lane != simlink.LaneFixedPoint || d.BW != ltephy.BW1_4 {
					t.Fatalf("deployment mapping: %+v", d)
				}
			},
		},
		{
			"exact subframes default",
			`{"mode":"exact","bandwidth":"1.4MHz"}`,
			func(t *testing.T, n *Spec) {
				if n.Subframes != 5 {
					t.Fatalf("exact subframes default = %d, want 5", n.Subframes)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := decodeValid(t, tc.body).Normalize()
			if err != nil {
				t.Fatalf("normalize: %v", err)
			}
			tc.check(t, n)
		})
	}
}

func TestSpecValidationRejects(t *testing.T) {
	cases := []struct {
		name, body, wantSub string
	}{
		{"bad venue", `{"venue":"moon"}`, "unknown venue"},
		{"bad bandwidth", `{"bandwidth":"7MHz"}`, "unknown bandwidth"},
		{"bad traffic", `{"traffic":"smoke"}`, "unknown traffic"},
		{"bad mode", `{"mode":"psychic"}`, "unknown mode"},
		{"bad lane", `{"lane":"q31"}`, "unknown lane"},
		{"bad impairment", `{"impairment":"cataclysmic"}`, "unknown impairment"},
		{"negative tags", `{"tags":-1}`, "tags"},
		{"too many tags", `{"tags":100001}`, "service cap"},
		{"exact too many tags", `{"mode":"exact","bandwidth":"1.4MHz","tags":65}`, "exact-mode cap"},
		{"exact too wide", `{"mode":"exact","bandwidth":"20MHz"}`, "exact mode serves"},
		{"exact too long", `{"mode":"exact","bandwidth":"1.4MHz","subframes":51}`, "service cap"},
		{"zero min distance", `{"min_tag_to_ue_ft":0}`, "min_tag_to_ue_ft"},
		{"negative min distance", `{"min_tag_to_ue_ft":-3}`, "min_tag_to_ue_ft"},
		{"max below min", `{"min_tag_to_ue_ft":10,"max_tag_to_ue_ft":5}`, "max_tag_to_ue_ft"},
		{"hour out of range", `{"hour":24}`, "hour"},
		{"negative subframes", `{"subframes":-1}`, "subframes"},
		{"subframes outside exact", `{"subframes":5}`, "exact mode"},
		{"lane outside exact", `{"lane":"fxp"}`, "exact mode"},
		{"impairment outside exact", `{"impairment":"mild"}`, "exact mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeValid(t, tc.body).Normalize()
			if err == nil {
				t.Fatalf("normalize %q succeeded, want error", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSpecHashCanonicalization: spelling a default out explicitly must land
// in the same cache slot as leaving it absent, and any material change must
// not.
func TestSpecHashCanonicalization(t *testing.T) {
	n1, err := decodeValid(t, `{}`).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := decodeValid(t, `{"venue":"home","tags":1,"tx_power_dbm":10,"hour":12}`).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n1.Hash() != n2.Hash() {
		t.Fatalf("explicit defaults changed the hash: %s vs %s", n1.Hash(), n2.Hash())
	}
	n3, err := decodeValid(t, `{"tx_power_dbm":0}`).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n3.Hash() == n1.Hash() {
		t.Fatal("explicit 0 dBm hashed equal to the 10 dBm default")
	}
	// Seed is part of the store key, not the spec hash surface — but it
	// lives in the canonical form, so different seeds hash differently too.
	n4, err := decodeValid(t, `{"seed":7}`).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n4.Hash() == n1.Hash() {
		t.Fatal("seed change did not change the canonical hash")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	n, err := decodeValid(t, `{"venue":"mall","tags":7}`).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	again, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if string(n.Canonical()) != string(again.Canonical()) {
		t.Fatalf("normalize not idempotent:\n%s\nvs\n%s", n.Canonical(), again.Canonical())
	}
}
