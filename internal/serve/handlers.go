// Package serve is lscatter-served's service layer: a stdlib net/http JSON
// API that accepts deployment specs, validates and normalizes them, runs
// them as background jobs on the deterministic experiments worker pool, and
// caches finished result bodies in a content-addressed artifact store keyed
// by (spec-hash, seed).
//
// The determinism contract the end-to-end tests pin: two submissions with
// the same normalized spec and seed return byte-identical result bodies, at
// any server worker count, and the second is served from the store without
// recompute. See docs/SERVING.md for the API reference.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Server is the HTTP skin over a Manager.
type Server struct {
	manager *Manager
}

// NewServer builds a server plus its manager from the options. It fails only
// when the durable artifact store cannot be opened.
func NewServer(opts Options) (*Server, error) {
	m, err := NewManager(opts)
	if err != nil {
		return nil, err
	}
	return &Server{manager: m}, nil
}

// Manager exposes the underlying job manager (shutdown, tests).
func (s *Server) Manager() *Manager { return s.manager }

// Handler returns the API routes:
//
//	POST   /v1/runs              submit a deployment spec
//	GET    /v1/runs              list runs (submission order)
//	GET    /v1/runs/{id}         run status + progress
//	GET    /v1/runs/{id}/results finished result body (byte-stable)
//	GET    /v1/runs/{id}/events  SSE stream of per-tag progress rows
//	DELETE /v1/runs/{id}         cancel a run
//	GET    /healthz              liveness
//	GET    /metricsz             job counters + artifact-store stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metricsz", s.handleMetrics)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	return mux
}

// writeJSON renders v; API responses are small, so encoding errors can only
// be broken pipes, which the server has no recovery for anyway.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsDoc is the /metricsz body. Disk is present only when the server
// runs with a durable artifact store (-artifact-dir).
type metricsDoc struct {
	Jobs  Counters   `json:"jobs"`
	Store StoreStats `json:"store"`
	Disk  *DiskStats `json:"disk,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := metricsDoc{
		Jobs:  s.manager.Counters(),
		Store: s.manager.Store().Stats(),
	}
	if disk := s.manager.Disk(); disk != nil {
		st := disk.Stats()
		doc.Disk = &st
	}
	writeJSON(w, http.StatusOK, doc)
}

// submitDoc is the POST /v1/runs response: the job snapshot plus the links
// a client polls next.
type submitDoc struct {
	JobStatus
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	normalized, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.manager.Submit(normalized)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := job.Status()
	writeJSON(w, http.StatusAccepted, submitDoc{
		JobStatus:  st,
		StatusURL:  "/v1/runs/" + st.ID,
		ResultsURL: "/v1/runs/" + st.ID + "/results",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"runs": s.manager.Jobs()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.manager.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	job, _ := s.manager.Get(id)
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResults serves the stored result body verbatim: the bytes written
// here are exactly the bytes in the artifact store, which is what the
// byte-identical caching contract promises.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	body, done := job.Results()
	if !done {
		st := job.Status()
		switch st.State {
		case Failed, Canceled:
			writeError(w, http.StatusGone, "run %s is %s: %s", st.ID, st.State, st.Error)
		default:
			writeError(w, http.StatusConflict, "run %s is %s (%d/%d tags); poll %s",
				st.ID, st.State, st.Done, st.Total, "/v1/runs/"+st.ID)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", job.ETag())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleEvents streams a run's progress as server-sent events: one
// "progress" event per finished tag (overall counters plus that tag's
// report), then exactly one "end" event carrying the terminal state and, for
// successful runs, the result body's ETag. The backlog replays to late
// subscribers, so attaching after completion still yields the stream's tail.
//
// The producer never blocks on this handler: events are read from the job's
// log at the consumer's pace, so a slow or disconnecting client cannot stall
// or cancel the underlying run. Client disconnect just ends the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	i := 0
	for {
		evs, next, terminal, wait := job.EventsSince(i)
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			_ = rc.Flush()
		}
		i = next
		if terminal {
			return // the end event has been delivered
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
