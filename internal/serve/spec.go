package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"lscatter/internal/core"
	"lscatter/internal/experiments"
	"lscatter/internal/ltephy"
	"lscatter/internal/simlink"
	"lscatter/internal/traffic"
)

// Spec is the wire form of one deployment-simulation request. Fields where
// the JSON zero value is itself meaningful (0 dBm transmit power, a lossless
// tag, midnight) are pointers: absent means "use the documented default",
// an explicit zero is honored as zero — the same contract core.LinkConfig
// implements with the core.Auto sentinel.
//
// Unknown fields are rejected at decode time so a typoed knob fails loudly
// instead of silently running the default deployment.
type Spec struct {
	// Venue is "home" (default), "mall" or "outdoor".
	Venue string `json:"venue"`
	// Bandwidth is the LTE channel: "1.4MHz", "3MHz", "5MHz", "10MHz",
	// "15MHz" or "20MHz" (default).
	Bandwidth string `json:"bandwidth"`
	// Tags is the fleet size (default 1). Semi-analytic runs allow up to
	// MaxTags tags, exact runs up to MaxExactTags.
	Tags int `json:"tags"`
	// MinTagToUEFt/MaxTagToUEFt bound the fleet's tag-to-UE distance ramp
	// in feet (defaults 3 and the venue's reach: home 15, mall 60,
	// outdoor 120).
	MinTagToUEFt *float64 `json:"min_tag_to_ue_ft"`
	MaxTagToUEFt *float64 `json:"max_tag_to_ue_ft"`
	// Traffic is the ambient-carrier occupancy model: "lte" (default,
	// always-on), "wifi" or "lora" (duty-cycled; occupancy scales goodput).
	Traffic string `json:"traffic"`
	// Hour is the time of day in [0, 24) the occupancy model is sampled at
	// (default 12; explicit 0 = midnight is honored).
	Hour *float64 `json:"hour"`
	// Mode is "semi-analytic" (default) or "exact" (bit-true chain per tag,
	// capped — see Validate).
	Mode string `json:"mode"`
	// Lane is "float" (default) or "fxp" (Q1.15 hot path); exact mode only.
	Lane string `json:"lane"`
	// Subframes is the exact-mode simulated length per tag in ms
	// (default 5, cap MaxSubframes).
	Subframes int `json:"subframes"`
	// Impairment names a rung of the resilience ladder: "off" (default),
	// "mild", "moderate" or "severe"; exact mode only.
	Impairment string `json:"impairment"`
	// TxPowerDBm is the eNodeB transmit power (absent = 10 dBm default;
	// explicit 0 = 0 dBm).
	TxPowerDBm *float64 `json:"tx_power_dbm"`
	// TagLossDB is the tag reflection loss (absent = 4 dB default;
	// explicit 0 = lossless).
	TagLossDB *float64 `json:"tag_loss_db"`
	// Seed drives every random element; taken verbatim, 0 included.
	Seed uint64 `json:"seed"`
}

// Service caps: a multi-tenant server must bound the cost of a single
// request. Exact mode simulates the full waveform per tag, so its fleet and
// duration are capped much harder than the closed-form mode.
const (
	// MaxTags bounds semi-analytic fleets.
	MaxTags = 100000
	// MaxExactTags bounds exact-mode fleets.
	MaxExactTags = 64
	// MaxSubframes bounds the exact-mode per-tag duration (ms).
	MaxSubframes = 50
	// maxSpecBytes bounds the request body the decoder will read.
	maxSpecBytes = 1 << 20
)

// exactBWCap is the widest bandwidth an exact-mode request may ask for: the
// 512-point FFT chain stays in service-grade time per tag; wider channels
// belong to the batch CLIs.
const exactBWCap = ltephy.BW5

var venues = map[string]traffic.Venue{
	"home":    traffic.Home,
	"mall":    traffic.Mall,
	"outdoor": traffic.Outdoor,
}

var techs = map[string]traffic.Tech{
	"lte":  traffic.LTE,
	"wifi": traffic.WiFi,
	"lora": traffic.LoRa,
}

// venueReachFt is the default MaxTagToUEFt per venue, matching the paper's
// evaluated ranges (§4.3-4.5).
var venueReachFt = map[string]float64{
	"home":    15,
	"mall":    60,
	"outdoor": 120,
}

// bandwidthByName maps the wire names to ltephy bandwidths.
func bandwidthByName(name string) (ltephy.Bandwidth, bool) {
	for _, bw := range ltephy.Bandwidths {
		if bw.String() == name {
			return bw, true
		}
	}
	return 0, false
}

// DecodeSpec parses one JSON spec from r. It rejects unknown fields,
// trailing data and bodies beyond maxSpecBytes; it does not validate —
// callers chain Normalize for that.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// A second Decode must see EOF: two concatenated documents are a
	// malformed request, not a spec plus garbage we silently drop.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("spec: trailing data after JSON document")
	}
	return &s, nil
}

// Normalize validates the spec and returns a fully-defaulted copy: every
// optional field is filled in, every pointer is non-nil, every enum is
// lower-cased. The normalized form is what Canonical hashes, so two specs
// that differ only in spelling optional fields out explicitly produce the
// same hash — and the same cache entry.
func (s *Spec) Normalize() (*Spec, error) {
	n := *s
	n.Venue = strings.ToLower(n.Venue)
	n.Traffic = strings.ToLower(n.Traffic)
	n.Mode = strings.ToLower(n.Mode)
	n.Lane = strings.ToLower(n.Lane)
	n.Impairment = strings.ToLower(n.Impairment)

	if n.Venue == "" {
		n.Venue = "home"
	}
	if _, ok := venues[n.Venue]; !ok {
		return nil, fmt.Errorf("spec: unknown venue %q (want home, mall or outdoor)", n.Venue)
	}
	if n.Bandwidth == "" {
		n.Bandwidth = ltephy.BW20.String()
	}
	bw, ok := bandwidthByName(n.Bandwidth)
	if !ok {
		return nil, fmt.Errorf("spec: unknown bandwidth %q", n.Bandwidth)
	}
	if n.Traffic == "" {
		n.Traffic = "lte"
	}
	if _, ok := techs[n.Traffic]; !ok {
		return nil, fmt.Errorf("spec: unknown traffic model %q (want lte, wifi or lora)", n.Traffic)
	}
	switch n.Mode {
	case "":
		n.Mode = "semi-analytic"
	case "semi-analytic", "exact":
	default:
		return nil, fmt.Errorf("spec: unknown mode %q (want semi-analytic or exact)", n.Mode)
	}
	switch n.Lane {
	case "":
		n.Lane = "float"
	case "float", "fxp":
	default:
		return nil, fmt.Errorf("spec: unknown lane %q (want float or fxp)", n.Lane)
	}
	if n.Impairment == "" {
		n.Impairment = "off"
	}
	switch n.Impairment {
	case "off", "mild", "moderate", "severe":
	default:
		return nil, fmt.Errorf("spec: unknown impairment level %q (want off, mild, moderate or severe)", n.Impairment)
	}

	if n.Tags == 0 {
		n.Tags = 1
	}
	if n.Tags < 0 {
		return nil, fmt.Errorf("spec: tags = %d, need >= 1", n.Tags)
	}
	if n.MinTagToUEFt == nil {
		n.MinTagToUEFt = ptr(3.0)
	}
	if n.MaxTagToUEFt == nil {
		n.MaxTagToUEFt = ptr(venueReachFt[n.Venue])
	}
	if *n.MinTagToUEFt <= 0 {
		return nil, fmt.Errorf("spec: min_tag_to_ue_ft = %g, need > 0", *n.MinTagToUEFt)
	}
	if *n.MaxTagToUEFt < *n.MinTagToUEFt {
		return nil, fmt.Errorf("spec: max_tag_to_ue_ft = %g < min_tag_to_ue_ft = %g",
			*n.MaxTagToUEFt, *n.MinTagToUEFt)
	}
	if n.Hour == nil {
		n.Hour = ptr(12.0)
	}
	if *n.Hour < 0 || *n.Hour >= 24 {
		return nil, fmt.Errorf("spec: hour = %g, need [0, 24)", *n.Hour)
	}
	if n.Subframes < 0 {
		return nil, fmt.Errorf("spec: subframes = %d, need >= 0", n.Subframes)
	}

	// Mode-dependent rules. Knobs that only the exact chain honors are
	// rejected — not silently ignored — on semi-analytic requests.
	if n.Mode == "exact" {
		if n.Subframes == 0 {
			n.Subframes = 5
		}
		if n.Subframes > MaxSubframes {
			return nil, fmt.Errorf("spec: subframes = %d exceeds the service cap %d", n.Subframes, MaxSubframes)
		}
		if n.Tags > MaxExactTags {
			return nil, fmt.Errorf("spec: tags = %d exceeds the exact-mode cap %d", n.Tags, MaxExactTags)
		}
		if bw > exactBWCap {
			return nil, fmt.Errorf("spec: exact mode serves bandwidths up to %s (got %s); use the batch CLIs for wider channels",
				exactBWCap, n.Bandwidth)
		}
	} else {
		if n.Tags > MaxTags {
			return nil, fmt.Errorf("spec: tags = %d exceeds the service cap %d", n.Tags, MaxTags)
		}
		if n.Subframes != 0 {
			return nil, errors.New("spec: subframes only applies to exact mode")
		}
		if n.Lane != "float" {
			return nil, errors.New("spec: lane only applies to exact mode")
		}
		if n.Impairment != "off" {
			return nil, errors.New("spec: the impairment ladder only applies to exact mode")
		}
	}

	// Defaults for the remaining pointers: absent means core.Auto, which
	// core.applyDefaults resolves (10 dBm, 4 dB). They are materialized here
	// so the canonical form is fully explicit.
	if n.TxPowerDBm == nil {
		n.TxPowerDBm = ptr(10.0)
	}
	if n.TagLossDB == nil {
		n.TagLossDB = ptr(4.0)
	}
	return &n, nil
}

func ptr(v float64) *float64 { return &v }

// Canonical returns the normalized spec's canonical JSON encoding: a single
// deterministic byte string with every field explicit. It must only be
// called on the output of Normalize.
func (s *Spec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A normalized Spec is a plain struct of scalars; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("serve: canonical marshal: %v", err))
	}
	return b
}

// Hash returns the content address of the normalized spec: the first 8
// bytes of the SHA-256 of its canonical encoding, hex-encoded. Two requests
// with equal hashes (and equal seeds) are the same computation.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:8])
}

// Deployment translates the normalized spec into the experiments-layer
// config. The pointer fields keep their explicit values; absent fields were
// already materialized to their defaults by Normalize.
func (s *Spec) Deployment() experiments.DeploymentConfig {
	bw, _ := bandwidthByName(s.Bandwidth)
	mode := core.SemiAnalytic
	if s.Mode == "exact" {
		mode = core.Exact
	}
	lane := simlink.LaneFloat
	if s.Lane == "fxp" {
		lane = simlink.LaneFixedPoint
	}
	impairment := s.Impairment
	if impairment == "off" {
		impairment = ""
	}
	return experiments.DeploymentConfig{
		Venue:        venues[s.Venue],
		BW:           bw,
		Tags:         s.Tags,
		MinTagToUEFt: *s.MinTagToUEFt,
		MaxTagToUEFt: *s.MaxTagToUEFt,
		Traffic:      techs[s.Traffic],
		Hour:         *s.Hour,
		Mode:         mode,
		Lane:         lane,
		Subframes:    s.Subframes,
		Impair:       impairment,
		TxPowerDBm:   *s.TxPowerDBm,
		TagLossDB:    *s.TagLossDB,
		Seed:         s.Seed,
	}
}
