package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The tests in this file are the job manager's race-detector coverage (make
// ci runs the suite under -race): concurrent submissions, cancellation
// mid-run, and graceful shutdown under load all exercise the
// Submit/worker/Cancel/Shutdown lock interplay.

func normalized(t testing.TB, tags int, seed uint64) *Spec {
	t.Helper()
	s := &Spec{Tags: tags, Seed: seed}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// newManager builds a manager for tests, failing the test on setup errors
// and routing operational logs through the test log.
func newManager(t testing.TB, opts Options) *Manager {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerConcurrentSubmissions(t *testing.T) {
	m := newManager(t, Options{Workers: 4, QueueDepth: 256, JobWorkers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	jobs := make(chan *Job, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Half the clients share seeds so cache hits and duplicate
				// in-flight computations both happen under contention.
				j, err := m.Submit(normalized(t, 3, uint64(c%4*perClient+i)))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs <- j
			}
		}(c)
	}
	wg.Wait()
	close(jobs)

	for j := range jobs {
		<-j.Finished()
		st := j.Status()
		if st.State != Done {
			t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
		}
	}
	ctr := m.Counters()
	if ctr.Submitted != clients*perClient {
		t.Fatalf("submitted %d, want %d", ctr.Submitted, clients*perClient)
	}
	// Every submission resolves exactly one way: memory hit, disk hit,
	// coalesced join, or a new run — and with nothing canceled or failed,
	// every run computes.
	if ctr.CacheHits+ctr.DiskHits+ctr.Coalesced+ctr.Runs != ctr.Submitted {
		t.Fatalf("ledger unbalanced: %+v", ctr)
	}
	if ctr.Computed != ctr.Runs {
		t.Fatalf("runs %d != computed %d with nothing canceled: %+v", ctr.Runs, ctr.Computed, ctr)
	}
	if ctr.DiskHits != 0 {
		t.Fatalf("disk hits %d without a configured artifact dir", ctr.DiskHits)
	}
	// Concurrent identical submissions coalesce instead of racing past the
	// cache: 24 distinct keys were submitted twice each, so at most 24
	// computations ran.
	if ctr.Computed > 24 {
		t.Fatalf("computed %d runs for 24 distinct keys", ctr.Computed)
	}
	// With everything settled, a repeat submission must be a pure hit.
	j, err := m.Submit(normalized(t, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); !st.CacheHit || st.State != Done {
		t.Fatalf("post-settle duplicate not served from the store: %+v", st)
	}
	if got := m.Counters(); got.Computed != ctr.Computed {
		t.Fatalf("post-settle duplicate recomputed: %d -> %d", ctr.Computed, got.Computed)
	}
}

func TestManagerCancelMidRun(t *testing.T) {
	m := newManager(t, Options{Workers: 2, QueueDepth: 64, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	// A fleet big enough to still be running when the cancels land, plus
	// concurrent status readers to shake the locks.
	j, err := m.Submit(normalized(t, 20000, 77))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				j.Status()
				m.Jobs()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Cancel(j.Status().ID)
		}()
	}
	wg.Wait()
	<-j.Finished()
	st := j.Status()
	if st.State != Canceled && st.State != Done {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	ctr := m.Counters()
	if st.State == Canceled && ctr.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want exactly 1", ctr.Canceled)
	}
}

func TestManagerGracefulShutdownUnderLoad(t *testing.T) {
	m := newManager(t, Options{Workers: 4, QueueDepth: 256, JobWorkers: 2})

	var jobs []*Job
	for i := 0; i < 12; i++ {
		j, err := m.Submit(normalized(t, 30, uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Submissions racing the shutdown must either enqueue or get
	// ErrShuttingDown — never panic, never hang.
	var wg sync.WaitGroup
	racing := make(chan *Job, 64)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				j, err := m.Submit(normalized(t, 10, uint64(2000+c*16+i)))
				switch err {
				case nil:
					racing <- j
				case ErrShuttingDown, ErrQueueFull:
				default:
					t.Errorf("submit during shutdown: %v", err)
				}
			}
		}(c)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(racing)

	// Graceful: every job accepted before the queue closed ran to a
	// terminal state; none is stuck queued or running.
	for j := range racing {
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		select {
		case <-j.Finished():
		default:
			t.Fatalf("job %s not finished after shutdown (state %s)", j.Status().ID, j.Status().State)
		}
		if st := j.Status(); st.State == Queued || st.State == Running {
			t.Fatalf("job %s left %s after shutdown", st.ID, st.State)
		}
	}

	if _, err := m.Submit(normalized(t, 1, 1)); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestManagerQueueFull(t *testing.T) {
	m := newManager(t, Options{Workers: 1, QueueDepth: 1, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	// Saturate: one running + one queued; the rest must be rejected, not
	// block. Distinct seeds defeat the cache.
	var accepted int
	for i := 0; i < 20; i++ {
		_, err := m.Submit(normalized(t, 300, uint64(3000+i)))
		switch err {
		case nil:
			accepted++
		case ErrQueueFull:
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	if accepted >= 20 {
		t.Fatalf("queue depth 1 accepted all %d jobs", accepted)
	}
}
