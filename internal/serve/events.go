package serve

import (
	"encoding/json"
	"fmt"

	"lscatter/internal/experiments"
)

// Event is one server-sent event on a job's stream: a pre-marshaled data
// payload under a type tag. Payloads are marshaled once, when the event is
// appended, so every subscriber sees identical bytes.
type Event struct {
	Type string // "progress" or "end"
	Data string // JSON document
}

// progressEvent is the per-tag row streamed while a run executes: the
// overall progress counters plus the finished tag's report. Which tag
// finishes at which row is unspecified under a concurrent pool (see
// experiments.RunDeployment), so the stream is not part of the
// byte-stability contract — only result bodies are.
type progressEvent struct {
	Done  int                    `json:"done"`
	Total int                    `json:"total"`
	Tag   *experiments.TagReport `json:"tag,omitempty"`
}

// endEvent terminates every stream. ETag matches the ETag header on
// GET /v1/runs/{id}/results, so an SSE client can turn around and fetch (or
// revalidate) the result body without another status poll.
type endEvent struct {
	State State  `json:"state"`
	ETag  string `json:"etag,omitempty"`
	Error string `json:"error,omitempty"`
}

// maxEventBacklog bounds the per-job event history. Streams replay the
// backlog to late subscribers; beyond the bound the oldest rows are dropped
// (the end event is always retained because it is appended last).
const maxEventBacklog = 4096

// eventLog is a job's append-only event history plus a broadcast channel.
// Appending never blocks on consumers: subscribers read the slice at their
// own pace and wait on ch for more, so a slow or stuck SSE client can never
// stall the job that is producing events. Guarded by the owning Job's mu.
type eventLog struct {
	base     int // index of list[0] in the logical stream
	list     []Event
	ch       chan struct{} // closed and replaced on every append
	terminal bool          // an end event has been appended
}

func newEventLog() eventLog {
	return eventLog{ch: make(chan struct{})}
}

// appendLocked adds an event and wakes all waiters. Callers hold the job mu.
func (l *eventLog) appendLocked(ev Event) {
	l.list = append(l.list, ev)
	if len(l.list) > maxEventBacklog {
		drop := len(l.list) - maxEventBacklog
		l.list = append([]Event(nil), l.list[drop:]...)
		l.base += drop
	}
	close(l.ch)
	l.ch = make(chan struct{})
}

// marshalEvent renders a payload; event payloads are plain structs of
// scalars, so this cannot fail.
func marshalEvent(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: event marshal: %v", err))
	}
	return string(b)
}

// EventsSince returns the events at logical index >= i, the next index to
// resume from, whether the stream has terminated, and a channel closed on
// the next append. A subscriber that fell behind a truncated backlog resumes
// at the oldest retained event.
func (j *Job) EventsSince(i int) (evs []Event, next int, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < j.events.base {
		i = j.events.base
	}
	if off := i - j.events.base; off < len(j.events.list) {
		evs = append([]Event(nil), j.events.list[off:]...)
	}
	return evs, j.events.base + len(j.events.list), j.events.terminal, j.events.ch
}
