package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeated outputs: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(10) value %d count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestComplexVariance(t *testing.T) {
	r := New(19)
	const n = 100000
	var power float64
	for i := 0; i < n; i++ {
		c := r.Complex(1 / math.Sqrt2) // unit total power
		power += real(c)*real(c) + imag(c)*imag(c)
	}
	if p := power / n; math.Abs(p-1) > 0.03 {
		t.Fatalf("complex sample power = %v, want ~1", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(23)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/1000 times", same)
	}
}

func TestBitsAreFair(t *testing.T) {
	r := New(29)
	buf := make([]byte, 100000)
	r.Bits(buf)
	ones := 0
	for _, b := range buf {
		if b > 1 {
			t.Fatalf("Bits produced non-bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 49000 || ones > 51000 {
		t.Fatalf("ones = %d of 100000, want ~50000", ones)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost by Shuffle", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
