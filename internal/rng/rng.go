// Package rng provides a small, fast, deterministic random number source used
// by every stochastic component in the simulator (channel noise, fading,
// traffic processes, workload generators).
//
// All experiments in this repository are seeded, so a run with the same seed
// reproduces bit-identical results. The generator is xoshiro256** seeded via
// SplitMix64, following the reference construction by Blackman and Vigna.
// math/rand is deliberately not used: its global state makes experiments
// order-dependent, and per-experiment *rand.Rand values do not support the
// cheap stream forking that the simulator needs.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; fork one Source per goroutine with Fork.
type Source struct {
	s [4]uint64
	// cached second output of the Box-Muller transform
	gauss    float64
	hasGauss bool
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// A theoretically possible all-zero state would make the generator stick.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fork derives an independent child stream. The label decorrelates children
// forked from the same parent state.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 significant bits, as in the reference implementation.
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo over 64 bits has negligible bias for the n used here (< 2^32).
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64. It exists so a Source can stand
// in where a math/rand-style source is expected.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (Box-Muller, cached pair).
func (r *Source) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Source) ExpFloat64() float64 {
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Complex returns a circularly symmetric complex Gaussian sample with the
// given standard deviation per real dimension.
func (r *Source) Complex(sigma float64) complex128 {
	return complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
}

// Bit returns a uniform 0/1 value.
func (r *Source) Bit() byte { return byte(r.Uint64() >> 63) }

// Bits fills dst with uniform 0/1 bytes and returns it.
func (r *Source) Bits(dst []byte) []byte {
	for i := range dst {
		dst[i] = r.Bit()
	}
	return dst
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the given swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
