package wifiphy

import (
	"errors"
	"fmt"
	"math/cmplx"

	"lscatter/internal/bits"
	"lscatter/internal/dsp"
	"lscatter/internal/modem"
)

// sigInfoBits is the information content of our SIGNAL symbol: 4 rate bits,
// 12 length bits (payload bits / 8, as octets), 2 reserved. With the 6-bit
// convolutional tail this codes to exactly one BPSK symbol (48 coded bits).
const sigInfoBits = 18

// Frame is one 802.11g PPDU.
type Frame struct {
	// Rate is the data-section MCS.
	Rate Rate
	// Payload is the MAC payload in bits (any length; an FCS is appended).
	Payload []byte
}

// conv is the industry K=7 g=(133,171) code — shared with the LTE substrate.
var conv = bits.NewConvCodeR12()

// perSymbolInterleaver spreads coded bits across a symbol's subcarriers.
func perSymbolInterleaver() *bits.BlockInterleaver { return bits.NewBlockInterleaver(16) }

// Modulate serializes a frame to 20 Msps baseband samples: preamble, SIGNAL
// symbol, then the coded/scrambled/interleaved data symbols.
func Modulate(f Frame) ([]complex128, error) {
	if len(f.Payload)%8 != 0 {
		return nil, errors.New("wifiphy: payload must be whole octets")
	}
	octets := len(f.Payload) / 8
	if octets >= 1<<12 {
		return nil, errors.New("wifiphy: payload too long for the SIG length field")
	}
	out := Preamble()

	// SIGNAL symbol: BPSK rate-1/2, no scrambling, pilot polarity of symbol 0.
	sig := make([]byte, sigInfoBits)
	for i := 0; i < 4; i++ {
		sig[i] = byte(int(f.Rate) >> (3 - i) & 1)
	}
	for i := 0; i < 12; i++ {
		sig[4+i] = byte(octets >> (11 - i) & 1)
	}
	sigCoded := perSymbolInterleaver().Interleave(conv.Encode(sig))
	out = append(out, dataSymbol(modem.Map(modem.BPSK, sigCoded), 0)...)

	// DATA: FCS, scramble, encode, interleave per symbol, map.
	data := bits.AttachCRC32(f.Payload)
	scramble(data, 0x5d)
	coded := conv.Encode(data)
	bps := f.Rate.BitsPerSymbol()
	// Pad the final symbol with zeros.
	for len(coded)%bps != 0 {
		coded = append(coded, 0)
	}
	inter := perSymbolInterleaver()
	scheme := f.Rate.scheme()
	for s := 0; s*bps < len(coded); s++ {
		symBits := inter.Interleave(coded[s*bps : (s+1)*bps])
		out = append(out, dataSymbol(modem.Map(scheme, symBits), s+1)...)
	}
	return out, nil
}

// dataSymbol maps 48 constellation points onto one OFDM symbol with pilots
// and guard interval.
func dataSymbol(points []complex128, symIdx int) []complex128 {
	if len(points) != DataCarriers {
		panic(fmt.Sprintf("wifiphy: %d points for a symbol, want %d", len(points), DataCarriers))
	}
	freq := make([]complex128, FFTSize)
	for i, k := range dataCarrierIndex {
		freq[bin(k)] = points[i]
	}
	pol := pilotPolarity[symIdx%len(pilotPolarity)]
	pilots := [4]float64{1, 1, 1, -1}
	for i, k := range pilotIndex {
		freq[bin(k)] = complex(pol*pilots[i], 0)
	}
	td := make([]complex128, FFTSize)
	dsp.PlanFor(FFTSize).Inverse(td, freq)
	dsp.Scale(td, FFTSize/8) // ~unit average power over 52 carriers
	out := make([]complex128, 0, SymbolLen)
	out = append(out, td[FFTSize-GI:]...)
	return append(out, td...)
}

// RxFrame is a decoded frame with reception diagnostics.
type RxFrame struct {
	Rate    Rate
	Payload []byte
	// FCSOK reports whether the CRC-32 verified.
	FCSOK bool
	// SymbolPhases records the per-symbol common phase (radians) measured
	// from the pilots, after channel equalization — the observable a
	// symbol-level backscatter receiver keys on.
	SymbolPhases []float64
	// DataSymbols is the number of data symbols consumed.
	DataSymbols int
}

// Demodulate decodes a frame from samples beginning at the preamble start
// (use DetectPacket to find it). noiseVar scales the soft-decision LLRs.
func Demodulate(x []complex128, noiseVar float64) (*RxFrame, error) {
	if len(x) < 320+SymbolLen {
		return nil, errors.New("wifiphy: too short for preamble and SIG")
	}
	// Channel estimation from the two long symbols (at 192 and 256).
	ref := ltfFreqRef()
	plan := dsp.PlanFor(FFTSize)
	h := make([]complex128, FFTSize)
	spec := make([]complex128, FFTSize)
	for _, off := range []int{192, 256} {
		plan.Forward(spec, x[off:off+FFTSize])
		for b := range h {
			if ref[b] != 0 {
				h[b] += spec[b] * cmplx.Conj(ref[b]) / 2
			}
		}
	}
	eq := func(start, symIdx int) ([]complex128, float64) {
		plan.Forward(spec, x[start+GI:start+SymbolLen])
		// Pilot common-phase estimate.
		pol := pilotPolarity[symIdx%len(pilotPolarity)]
		pilots := [4]float64{1, 1, 1, -1}
		var acc complex128
		for i, k := range pilotIndex {
			b := bin(k)
			if h[b] == 0 {
				continue
			}
			acc += spec[b] / h[b] * complex(pol*pilots[i], 0)
		}
		phase := cmplx.Phase(acc)
		rot := cmplx.Exp(complex(0, -phase))
		out := make([]complex128, DataCarriers)
		for i, k := range dataCarrierIndex {
			b := bin(k)
			if h[b] != 0 {
				out[i] = spec[b] / h[b] * rot
			}
		}
		return out, phase
	}

	// SIGNAL symbol.
	sigStart := 320
	sigPts, _ := eq(sigStart, 0)
	sigLLR := modem.DemapSoft(modem.BPSK, sigPts, noiseVar)
	deint := make([]float64, len(sigLLR))
	for i, src := range perSymbolInterleaver().Permutation(len(sigLLR)) {
		deint[src] = sigLLR[i]
	}
	sig := conv.DecodeSoft(deint)
	if sig == nil {
		return nil, errors.New("wifiphy: SIG decode failed")
	}
	rate := 0
	for i := 0; i < 4; i++ {
		rate = rate<<1 | int(sig[i])
	}
	if rate > int(Rate24) {
		return nil, fmt.Errorf("wifiphy: SIG rate field %d invalid", rate)
	}
	octets := 0
	for i := 0; i < 12; i++ {
		octets = octets<<1 | int(sig[4+i])
	}
	rx := &RxFrame{Rate: Rate(rate)}
	scheme := rx.Rate.scheme()
	bps := rx.Rate.BitsPerSymbol()
	codedLen := conv.EncodedLen(octets*8 + 32)
	nSyms := (codedLen + bps - 1) / bps
	if 320+SymbolLen*(1+nSyms) > len(x) {
		return nil, fmt.Errorf("wifiphy: frame claims %d symbols, stream too short", nSyms)
	}
	inter := perSymbolInterleaver()
	var llr []float64
	for s := 0; s < nSyms; s++ {
		pts, phase := eq(320+SymbolLen*(1+s), s+1)
		rx.SymbolPhases = append(rx.SymbolPhases, phase)
		symLLR := modem.DemapSoft(scheme, pts, noiseVar)
		d := make([]float64, len(symLLR))
		for i, src := range inter.Permutation(len(symLLR)) {
			d[src] = symLLR[i]
		}
		llr = append(llr, d...)
	}
	rx.DataSymbols = nSyms
	dec := conv.DecodeSoft(llr[:codedLen])
	if dec == nil {
		return nil, errors.New("wifiphy: data decode failed")
	}
	scramble(dec, 0x5d) // descramble (self-inverse with the same seed)
	payload, ok := bits.CheckCRC32(dec)
	rx.Payload = payload
	rx.FCSOK = ok
	return rx, nil
}
