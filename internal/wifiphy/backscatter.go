package wifiphy

import (
	"errors"
	"math"
)

// This file demonstrates FreeRider-style codeword translation on the
// bit-true 802.11g substrate: the tag flips the phase of whole OFDM symbols
// (one tag bit per two symbols), which a standard receiver's pilot tracking
// absorbs — the WiFi frame still decodes with a valid FCS — while the
// per-symbol common phase exposes the embedded bits to a backscatter-aware
// receiver. One bit per two 4 us symbols is the 125 kbps ceiling that makes
// the contrast with LScatter's per-unit modulation (Figure 23's three orders
// of magnitude) concrete at the waveform level.

// SymbolsPerTagBit is FreeRider's modulation granularity.
const SymbolsPerTagBit = 2

// TagCapacity returns how many tag bits fit on a frame with the given
// number of data symbols.
func TagCapacity(dataSymbols int) int { return dataSymbols / SymbolsPerTagBit }

// TagModulate applies symbol-level phase flips to a modulated frame: tag bit
// '1' leaves a symbol pair unchanged, '0' rotates both symbols by pi. The
// preamble and SIGNAL symbol pass through untouched so any receiver can
// still acquire and decode the frame. It returns the reflected waveform and
// the number of tag bits embedded.
func TagModulate(frame []complex128, tagBits []byte, reflectLossDB float64) ([]complex128, int, error) {
	headerLen := 320 + SymbolLen // preamble + SIG
	if len(frame) < headerLen+SymbolLen {
		return nil, 0, errors.New("wifiphy: frame too short to carry tag bits")
	}
	dataSymbols := (len(frame) - headerLen) / SymbolLen
	capacity := TagCapacity(dataSymbols)
	n := len(tagBits)
	if n > capacity {
		n = capacity
	}
	amp := complex(math.Pow(10, -reflectLossDB/20), 0)
	out := make([]complex128, len(frame))
	for i, v := range frame {
		out[i] = v * amp
	}
	for b := 0; b < n; b++ {
		if tagBits[b] == 1 {
			continue // phase 0
		}
		for s := 0; s < SymbolsPerTagBit; s++ {
			start := headerLen + (b*SymbolsPerTagBit+s)*SymbolLen
			for i := start; i < start+SymbolLen; i++ {
				out[i] = -out[i]
			}
		}
	}
	return out, n, nil
}

// RecoverTagBits reads the embedded tag bits from a decoded frame's
// per-symbol pilot phases: a pair of symbols sitting near ±pi carries '0',
// near 0 carries '1'.
func RecoverTagBits(rx *RxFrame, n int) []byte {
	if n > TagCapacity(len(rx.SymbolPhases)) {
		n = TagCapacity(len(rx.SymbolPhases))
	}
	out := make([]byte, 0, n)
	for b := 0; b < n; b++ {
		// Average the pair's |phase| distance from pi vs 0 on the unit
		// circle (phases wrap, so compare via cos).
		var c float64
		for s := 0; s < SymbolsPerTagBit; s++ {
			c += math.Cos(rx.SymbolPhases[b*SymbolsPerTagBit+s])
		}
		if c >= 0 {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}
