package wifiphy

import (
	"math"
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

func TestNumerology(t *testing.T) {
	if len(dataCarrierIndex) != 48 {
		t.Fatalf("%d data carriers, want 48", len(dataCarrierIndex))
	}
	for _, k := range dataCarrierIndex {
		if k == 0 || k < -26 || k > 26 {
			t.Fatalf("data carrier %d out of range", k)
		}
		for _, p := range pilotIndex {
			if k == p {
				t.Fatalf("data carrier %d collides with pilot", k)
			}
		}
	}
	if Rate6.Mbps() != 6 || Rate12.Mbps() != 12 || Rate24.Mbps() != 24 {
		t.Fatalf("rates: %v %v %v", Rate6.Mbps(), Rate12.Mbps(), Rate24.Mbps())
	}
}

func TestScramblerSelfInverse(t *testing.T) {
	r := rng.New(1)
	b := r.Bits(make([]byte, 500))
	orig := append([]byte(nil), b...)
	scramble(b, 0x5d)
	if bits.CountDiff(b, orig) < 100 {
		t.Fatal("scrambler barely changed the data")
	}
	scramble(b, 0x5d)
	if bits.CountDiff(b, orig) != 0 {
		t.Fatal("scrambler not self-inverse")
	}
}

func TestPreambleStructure(t *testing.T) {
	p := Preamble()
	if len(p) != 320 {
		t.Fatalf("preamble length %d, want 320", len(p))
	}
	// STF periodicity: 16-sample period over the first 160 samples.
	for i := 0; i+16 < 160; i++ {
		if d := p[i] - p[i+16]; abs2(d) > 1e-18 {
			t.Fatalf("STF not 16-periodic at %d", i)
		}
	}
	// LTF: the two long symbols are identical.
	for i := 0; i < 64; i++ {
		if d := p[192+i] - p[256+i]; abs2(d) > 1e-18 {
			t.Fatalf("LTF symbols differ at %d", i)
		}
	}
}

func TestModulateDemodulateClean(t *testing.T) {
	r := rng.New(3)
	for _, rate := range []Rate{Rate6, Rate12, Rate24} {
		payload := r.Bits(make([]byte, 8*40))
		x, err := Modulate(Frame{Rate: rate, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		rx, err := Demodulate(x, 0.01)
		if err != nil {
			t.Fatalf("%v: %v", rate, err)
		}
		if !rx.FCSOK {
			t.Fatalf("%v: FCS failed on a clean channel", rate)
		}
		if rx.Rate != rate {
			t.Fatalf("SIG decoded rate %v, want %v", rx.Rate, rate)
		}
		if bits.CountDiff(rx.Payload, payload) != 0 {
			t.Fatalf("%v: payload corrupted", rate)
		}
	}
}

func TestDemodulateWithNoiseAndChannel(t *testing.T) {
	r := rng.New(4)
	payload := r.Bits(make([]byte, 8*60))
	x, err := Modulate(Frame{Rate: Rate12, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	// Static complex channel gain + 15 dB SNR noise.
	g := complex(0.05, 0.08)
	for i := range x {
		x[i] *= g
	}
	sigP := dsp.Power(x)
	noiseVar := sigP / dsp.FromDB(15)
	channel.AWGN(r, x, noiseVar)
	rx, err := Demodulate(x, noiseVar/sigP)
	if err != nil {
		t.Fatal(err)
	}
	if !rx.FCSOK || bits.CountDiff(rx.Payload, payload) != 0 {
		t.Fatal("frame lost at 15 dB SNR through a complex channel")
	}
}

func TestDetectPacket(t *testing.T) {
	r := rng.New(5)
	payload := r.Bits(make([]byte, 8*20))
	frame, _ := Modulate(Frame{Rate: Rate6, Payload: payload})
	const prefix = 777
	x := make([]complex128, prefix)
	channel.AWGN(r, x, 1e-6)
	x = append(x, frame...)
	x = append(x, make([]complex128, 200)...)
	start, conf, ok := DetectPacket(x)
	if !ok {
		t.Fatal("packet not detected")
	}
	if conf < 0.8 {
		t.Fatalf("detection confidence %v", conf)
	}
	if start != prefix {
		t.Fatalf("packet start %d, want %d", start, prefix)
	}
	// End-to-end from the detected start.
	rx, err := Demodulate(x[start:], 0.01)
	if err != nil || !rx.FCSOK {
		t.Fatalf("decode from detected start failed: %v", err)
	}
}

func TestDetectPacketRejectsNoise(t *testing.T) {
	r := rng.New(6)
	x := make([]complex128, 5000)
	channel.AWGN(r, x, 0.1)
	if _, _, ok := DetectPacket(x); ok {
		t.Fatal("detector fired on pure noise")
	}
}

func TestFCSCatchesCorruption(t *testing.T) {
	r := rng.New(7)
	payload := r.Bits(make([]byte, 8*30))
	x, _ := Modulate(Frame{Rate: Rate6, Payload: payload})
	// Heavy noise: the decode may fail or the FCS must catch the damage.
	channel.AWGN(r, x, dsp.Power(x)*2)
	rx, err := Demodulate(x, 2)
	if err == nil && rx.FCSOK && bits.CountDiff(rx.Payload, payload) != 0 {
		t.Fatal("FCS passed on corrupted payload")
	}
}

func TestSymbolPhasesNearZeroWithoutBackscatter(t *testing.T) {
	r := rng.New(8)
	payload := r.Bits(make([]byte, 8*50))
	x, _ := Modulate(Frame{Rate: Rate6, Payload: payload})
	rx, err := Demodulate(x, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range rx.SymbolPhases {
		if math.Abs(ph) > 0.05 {
			t.Fatalf("symbol %d common phase %v without any impairment", i, ph)
		}
	}
}

func BenchmarkModulateFrame(b *testing.B) {
	r := rng.New(1)
	payload := r.Bits(make([]byte, 8*100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Modulate(Frame{Rate: Rate12, Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulateFrame(b *testing.B) {
	r := rng.New(1)
	payload := r.Bits(make([]byte, 8*100))
	x, _ := Modulate(Frame{Rate: Rate12, Payload: payload})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Demodulate(x, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
