package wifiphy

import (
	"testing"

	"lscatter/internal/bits"
	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/rng"
)

func TestTagModulateKeepsFrameDecodable(t *testing.T) {
	r := rng.New(11)
	payload := r.Bits(make([]byte, 8*80))
	frame, err := Modulate(Frame{Rate: Rate6, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	capacity := TagCapacity((len(frame) - 400) / SymbolLen)
	tagBits := r.Bits(make([]byte, capacity))
	hybrid, n, err := TagModulate(frame, tagBits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != capacity {
		t.Fatalf("embedded %d bits, capacity %d", n, capacity)
	}
	rx, err := Demodulate(hybrid, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point (§2.3/C1 analog for WiFi): symbol-level flips keep
	// the host protocol decodable because pilot tracking absorbs them.
	if !rx.FCSOK || bits.CountDiff(rx.Payload, payload) != 0 {
		t.Fatal("symbol flips broke the WiFi frame")
	}
	got := RecoverTagBits(rx, n)
	if bits.CountDiff(got, tagBits[:n]) != 0 {
		t.Fatal("tag bits not recovered from pilot phases")
	}
}

func TestTagBitsSurviveNoise(t *testing.T) {
	r := rng.New(12)
	payload := r.Bits(make([]byte, 8*80))
	frame, _ := Modulate(Frame{Rate: Rate6, Payload: payload})
	capacity := TagCapacity((len(frame) - 400) / SymbolLen)
	tagBits := r.Bits(make([]byte, capacity))
	hybrid, n, _ := TagModulate(frame, tagBits, 0)
	sigP := dsp.Power(hybrid)
	noiseVar := sigP / dsp.FromDB(15)
	channel.AWGN(r, hybrid, noiseVar)
	rx, err := Demodulate(hybrid, noiseVar/sigP)
	if err != nil || !rx.FCSOK {
		t.Fatal("frame lost at 15 dB")
	}
	got := RecoverTagBits(rx, n)
	if errs := bits.CountDiff(got, tagBits[:n]); errs > n/50 {
		t.Fatalf("%d/%d tag bit errors at 15 dB", errs, n)
	}
}

func TestFreeRiderRateIsThreeOrdersBelowLScatter(t *testing.T) {
	// The waveform-level ground truth behind Figure 23's gap: one tag bit
	// per two 4 us symbols = 125 kbps, vs LScatter's 1200 bits per 71.4 us
	// symbol ~ 13.68 Mbps.
	freeRider := 1.0 / (SymbolsPerTagBit * 4e-6)
	if freeRider != 125e3 {
		t.Fatalf("FreeRider ceiling = %v", freeRider)
	}
	lscatter := 13.68e6
	if ratio := lscatter / freeRider; ratio < 100 || ratio > 120 {
		t.Fatalf("rate ratio %v, want ~109 (x occupancy gap in deployment)", ratio)
	}
}

func TestTagModulateReflectionLoss(t *testing.T) {
	r := rng.New(13)
	payload := r.Bits(make([]byte, 8*20))
	frame, _ := Modulate(Frame{Rate: Rate6, Payload: payload})
	hybrid, _, _ := TagModulate(frame, []byte{1, 0, 1}, 6)
	ratio := dsp.Power(hybrid) / dsp.Power(frame)
	if db := dsp.DB(ratio); db > -5.8 || db < -6.2 {
		t.Fatalf("reflection loss %v dB, want -6", db)
	}
}

func TestTagModulateShortFrame(t *testing.T) {
	if _, _, err := TagModulate(make([]complex128, 100), []byte{1}, 0); err == nil {
		t.Fatal("short frame accepted")
	}
}
