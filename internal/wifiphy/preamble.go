package wifiphy

import (
	"math"
	"sync"

	"lscatter/internal/dsp"
)

// The 802.11 short training sequence occupies every fourth subcarrier of the
// ±26 range with QPSK-like values scaled by sqrt(13/6).
var stfCarriers = map[int]complex128{
	-24: complex(1, 1), -20: complex(-1, -1), -16: complex(1, 1),
	-12: complex(-1, -1), -8: complex(-1, -1), -4: complex(1, 1),
	4: complex(-1, -1), 8: complex(-1, -1), 12: complex(1, 1),
	16: complex(1, 1), 20: complex(1, 1), 24: complex(1, 1),
}

// ltfCarriers is the long-training BPSK sequence on subcarriers -26..26
// (index 0 = subcarrier -26), DC excluded per the standard table.
var ltfCarriers = []float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0, // DC
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// stfSymbol returns one 64-sample period of the short training field.
func stfSymbol() []complex128 {
	freq := make([]complex128, FFTSize)
	scale := complex(math.Sqrt(13.0/6.0), 0)
	for k, v := range stfCarriers {
		freq[bin(k)] = v * scale
	}
	out := make([]complex128, FFTSize)
	dsp.PlanFor(FFTSize).Inverse(out, freq)
	dsp.Scale(out, FFTSize/math.Sqrt(52))
	return out
}

// ltfSymbol returns one 64-sample period of the long training field.
func ltfSymbol() []complex128 {
	freq := make([]complex128, FFTSize)
	for i, v := range ltfCarriers {
		k := i - 26
		if v != 0 {
			freq[bin(k)] = complex(v, 0)
		}
	}
	out := make([]complex128, FFTSize)
	dsp.PlanFor(FFTSize).Inverse(out, freq)
	dsp.Scale(out, FFTSize/math.Sqrt(52))
	return out
}

// Preamble returns the 320-sample (16 us) 802.11 preamble: 10 repetitions of
// the short symbol (160 samples) followed by a double guard interval and two
// long symbols (160 samples).
func Preamble() []complex128 {
	stf := stfSymbol()
	ltf := ltfSymbol()
	out := make([]complex128, 0, 320)
	// STF: 10 x 16-sample quarters (the 64-sample period is itself 4
	// repetitions of a 16-sample pattern).
	for len(out) < 160 {
		out = append(out, stf[:16]...)
	}
	// GI2: last 32 samples of the long symbol.
	out = append(out, ltf[32:]...)
	out = append(out, ltf...)
	out = append(out, ltf...)
	return out
}

// The LTF is a constant of the standard, so its matched filter (reference
// spectrum and plan) is built once per process.
var (
	ltfOnce sync.Once
	ltfCorr *dsp.Correlator
)

func ltfCorrelator() *dsp.Correlator {
	ltfOnce.Do(func() { ltfCorr = dsp.NewCorrelator(ltfSymbol()) })
	return ltfCorr
}

// ltfFreqRef returns the known LTF subcarrier values for channel estimation.
func ltfFreqRef() []complex128 {
	out := make([]complex128, FFTSize)
	for i, v := range ltfCarriers {
		out[bin(i-26)] = complex(v, 0)
	}
	return out
}

// DetectPacket finds a frame start in a sample stream: STF detection by
// 16-sample delayed autocorrelation, then fine timing by cross-correlating
// the long training symbol. It returns the index of the first preamble
// sample and the autocorrelation confidence, or ok=false.
func DetectPacket(x []complex128) (start int, conf float64, ok bool) {
	if len(x) < 400 {
		return 0, 0, false
	}
	// Coarse: plateau of high 16-lag autocorrelation.
	const win = 96
	bestI, bestV := -1, 0.0
	var corr complex128
	var energy float64
	for i := 0; i+win+16 < len(x); i++ {
		if i == 0 {
			for j := 0; j < win; j++ {
				corr += x[j+16] * conj(x[j])
				energy += abs2(x[j])
			}
		} else {
			corr += x[i+win+15]*conj(x[i+win-1]) - x[i+15]*conj(x[i-1])
			energy += abs2(x[i+win-1]) - abs2(x[i-1])
		}
		if energy <= 1e-30 {
			continue
		}
		v := cAbs(corr) / energy
		if v > bestV {
			bestV, bestI = v, i
		}
	}
	if bestI < 0 || bestV < 0.6 {
		return 0, 0, false
	}
	// Fine: cross-correlate the LTF around the coarse estimate. The coarse
	// plateau spans roughly [start-80, start+144], so the first long symbol
	// (start+192) lies within [bestI+48, bestI+272]. One engine pass serves
	// both the detection test and the earliest-peak re-scan below; segment
	// energy advances by a running recurrence instead of a fresh O(M) sum
	// per lag, and everything compares in the squared domain.
	ltfC := ltfCorrelator()
	m := ltfC.RefLen()
	refE := ltfC.RefEnergy()
	searchLo := bestI + 40
	searchHi := bestI + 300
	if searchHi+m > len(x) {
		searchHi = len(x) - m
	}
	if searchHi <= searchLo {
		return 0, 0, false
	}
	seg := x[searchLo : searchHi+m]
	corrBuf := dsp.AcquireBuf(len(seg) - m + 1)
	defer dsp.ReleaseBuf(corrBuf)
	corrs := ltfC.Correlate(*corrBuf, seg)
	peakSq := -1.0
	segE := dsp.Energy(seg[:m])
	for l := range corrs {
		if l > 0 {
			segE += abs2(seg[l+m-1]) - abs2(seg[l-1])
		}
		den := segE * refE
		if den <= 0 {
			continue
		}
		if v := abs2(corrs[l]) / den; v > peakSq {
			peakSq = v
		}
	}
	if peakSq < 0.4*0.4 {
		return 0, 0, false
	}
	// The two long symbols (and the GI2 that copies the symbol tail) create
	// several near-equal correlation peaks 64 samples apart; the first LTF
	// symbol is the EARLIEST near-maximal lag.
	firstLag := -1
	segE = dsp.Energy(seg[:m])
	for l := range corrs {
		if l > 0 {
			segE += abs2(seg[l+m-1]) - abs2(seg[l-1])
		}
		den := segE * refE
		if den <= 0 {
			continue
		}
		if abs2(corrs[l])/den >= 0.96*peakSq {
			firstLag = l
			break
		}
	}
	if firstLag < 0 {
		return 0, 0, false
	}
	// firstLag points at the first LTF symbol = preamble start + 192.
	start = searchLo + firstLag - 192
	if start < 0 {
		return 0, 0, false
	}
	return start, bestV, true
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }
func abs2(c complex128) float64    { return real(c)*real(c) + imag(c)*imag(c) }
func cAbs(c complex128) float64    { return math.Sqrt(abs2(c)) }
