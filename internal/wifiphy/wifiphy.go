// Package wifiphy implements an IEEE 802.11g (ERP-OFDM) physical layer: the
// 64-point OFDM numerology, the short/long training preamble, per-symbol
// scrambling/coding/interleaving, pilot phase tracking and frame
// encapsulation with an FCS.
//
// It serves two purposes in this repository: it is the bit-true substrate
// for the FreeRider-style WiFi backscatter baseline (internal/baseline keeps
// the calibrated analytic model for the wide sweeps; this package grounds
// it at the waveform level), and it demonstrates §6's claim that LScatter's
// mechanisms are generic to OFDM carriers — the same symbol-level phase
// flipping the baseline tag applies here rides 4 us WiFi symbols exactly as
// LScatter's units ride 71.4 us LTE symbols.
package wifiphy

import (
	"fmt"

	"lscatter/internal/modem"
)

// 802.11 OFDM numerology.
const (
	// FFTSize is the OFDM transform size.
	FFTSize = 64
	// GI is the guard-interval length in samples (0.8 us at 20 Msps).
	GI = 16
	// SymbolLen is GI + FFTSize = 80 samples (4 us).
	SymbolLen = GI + FFTSize
	// SampleRate is 20 Msps.
	SampleRate = 20e6
	// DataCarriers is the number of data subcarriers per symbol.
	DataCarriers = 48
)

// dataCarrierIndex lists the signed subcarrier indices of the 48 data
// carriers (±1..±26 excluding the pilots at ±7 and ±21).
var dataCarrierIndex = buildDataCarriers()

// pilotIndex lists the pilot subcarriers.
var pilotIndex = [4]int{-21, -7, 7, 21}

func buildDataCarriers() []int {
	var out []int
	for k := -26; k <= 26; k++ {
		if k == 0 || k == -21 || k == -7 || k == 7 || k == 21 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Rate is an 802.11g modulation-coding scheme.
type Rate int

const (
	// Rate6 is BPSK rate-1/2 (6 Mbps).
	Rate6 Rate = iota
	// Rate12 is QPSK rate-1/2 (12 Mbps).
	Rate12
	// Rate24 is 16-QAM rate-1/2 (24 Mbps).
	Rate24
)

// scheme returns the constellation for a rate.
func (r Rate) scheme() modem.Scheme {
	switch r {
	case Rate6:
		return modem.BPSK
	case Rate12:
		return modem.QPSK
	case Rate24:
		return modem.QAM16
	}
	panic(fmt.Sprintf("wifiphy: unknown rate %d", r))
}

// String names the rate.
func (r Rate) String() string {
	switch r {
	case Rate6:
		return "6Mbps"
	case Rate12:
		return "12Mbps"
	case Rate24:
		return "24Mbps"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// BitsPerSymbol returns the coded bits carried by one OFDM symbol.
func (r Rate) BitsPerSymbol() int { return DataCarriers * r.scheme().BitsPerSymbol() }

// Mbps returns the nominal information rate in Mbit/s.
func (r Rate) Mbps() float64 {
	return float64(r.BitsPerSymbol()) / 2 /*rate 1/2*/ / 4e-6 / 1e6
}

// scramble applies the 802.11 frame-synchronous scrambler (x^7 + x^4 + 1)
// with the given 7-bit seed, in place, returning b.
func scramble(b []byte, seed byte) []byte {
	state := seed & 0x7f
	if state == 0 {
		state = 0x5d
	}
	for i := range b {
		fb := (state>>6 ^ state>>3) & 1
		state = state<<1&0x7f | fb
		b[i] ^= fb
	}
	return b
}

// bin maps a signed subcarrier index to an FFT bin.
func bin(k int) int {
	if k < 0 {
		return k + FFTSize
	}
	return k
}

// pilotPolarity is the 127-bit pilot polarity sequence (scrambler output for
// an all-ones seed), indexed by symbol number.
var pilotPolarity = buildPilotPolarity()

func buildPilotPolarity() []float64 {
	b := make([]byte, 127)
	scramble(b, 0x7f)
	out := make([]float64, 127)
	for i, v := range b {
		out[i] = 1 - 2*float64(v)
	}
	return out
}
