// Command lscatter-iq exports simulated waveforms as raw IQ files
// (interleaved little-endian complex float32, the GNU Radio / inspectrum
// convention), so the signals this repository synthesizes can be examined
// with standard SDR tooling. It can also summarize an existing IQ file.
//
//	lscatter-iq -out lte.cf32 -bw 5 -subframes 10            # clean downlink
//	lscatter-iq -out hybrid.cf32 -bw 5 -subframes 10 -tag    # with a tag
//	lscatter-iq -in hybrid.cf32 -rate 15.36e6                # inspect
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"lscatter/internal/channel"
	"lscatter/internal/dsp"
	"lscatter/internal/enodeb"
	"lscatter/internal/ltephy"
	"lscatter/internal/rng"
	"lscatter/internal/simlink"
	"lscatter/internal/tag"
)

func main() {
	var (
		out       = flag.String("out", "", "write a synthesized capture to this file")
		in        = flag.String("in", "", "summarize an existing cf32 file")
		bwStr     = flag.String("bw", "5", "LTE bandwidth in MHz")
		subframes = flag.Int("subframes", 10, "capture length in ms")
		withTag   = flag.Bool("tag", false, "include an LScatter tag reflection (-30 dB)")
		rate      = flag.Float64("rate", 0, "sample rate of -in captures (Hz), for reporting")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *in != "":
		if err := summarize(*in, *rate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *out != "":
		if err := synthesize(*out, *bwStr, *subframes, *withTag, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func synthesize(path, bwStr string, subframes int, withTag bool, seed uint64) error {
	var bw ltephy.Bandwidth
	found := false
	for _, b := range ltephy.Bandwidths {
		if bwStr+"MHz" == b.String() {
			bw, found = b, true
		}
	}
	if !found {
		return fmt.Errorf("unknown bandwidth %q", bwStr)
	}
	cfg := enodeb.DefaultConfig(bw)
	cfg.Seed = seed
	enb := enodeb.New(cfg)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	// The capture is the pipeline's received stream: clean downlink when the
	// session has no Link (RX aliases the ambient samples), or the
	// direct + attenuated-reflection combine when a tag rides along.
	total := 0
	var werr error
	sess := &simlink.Session{
		Source: enb,
		Sink: simlink.SinkFunc(func(fr *simlink.Frame) bool {
			for _, v := range fr.RX {
				if werr == nil {
					werr = binary.Write(w, binary.LittleEndian, float32(real(v)))
				}
				if werr == nil {
					werr = binary.Write(w, binary.LittleEndian, float32(imag(v)))
				}
			}
			total += len(fr.RX)
			return werr == nil
		}),
	}
	if withTag {
		mod := tag.NewModulator(tag.ModConfig{Params: cfg.Params})
		mod.QueueBits(rng.New(seed + 1).Bits(make([]byte, subframes*12*mod.PerSymbolBits())))
		sess.Direct = simlink.Identity
		sess.Tags = []*simlink.Tag{{Mod: mod, Path: simlink.GainDB(-30)}}
		sess.Link = channel.NewLink(rng.New(seed+2), 0) // noiseless combine, no draws
	}
	sess.Run(subframes)
	if werr != nil {
		return werr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples (%d ms at %.2f Msps) to %s\n",
		total, subframes, cfg.Params.SampleRate()/1e6, path)
	fmt.Printf("open with: inspectrum -r %.0f %s\n", cfg.Params.SampleRate(), path)
	return nil
}

func summarize(path string, rate float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var samples []complex128
	for {
		var re, im float32
		if err := binary.Read(r, binary.LittleEndian, &re); err != nil {
			break
		}
		if err := binary.Read(r, binary.LittleEndian, &im); err != nil {
			break
		}
		samples = append(samples, complex(float64(re), float64(im)))
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: no complete cf32 samples", path)
	}
	pw := dsp.Power(samples)
	peak := 0.0
	for _, v := range samples {
		if a := real(v)*real(v) + imag(v)*imag(v); a > peak {
			peak = a
		}
	}
	fmt.Printf("%s: %d samples", path, len(samples))
	if rate > 0 {
		fmt.Printf(" (%.2f ms at %.2f Msps)", float64(len(samples))/rate*1e3, rate/1e6)
	}
	fmt.Printf("\nmean power %.3g (%.1f dBFS-ish), PAPR %.1f dB\n",
		pw, 10*math.Log10(pw), 10*math.Log10(peak/pw))
	return nil
}
