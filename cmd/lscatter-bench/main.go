// Command lscatter-bench regenerates the paper's tables and figures from the
// simulated LScatter system.
//
// Usage:
//
//	lscatter-bench -list
//	lscatter-bench -id F23 [-seed 7]
//	lscatter-bench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lscatter/internal/experiments"
)

func main() {
	var (
		id   = flag.String("id", "", "artifact to regenerate (e.g. T1, F4c, F16, F23, F32, P48)")
		all  = flag.Bool("all", false, "regenerate every artifact")
		list = flag.Bool("list", false, "list artifact IDs")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
	case *all:
		for _, res := range experiments.All(*seed) {
			fmt.Println(res.Render())
		}
	case *id != "":
		runner, ok := experiments.Lookup(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q; known: %s\n", *id, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		fmt.Println(runner(*seed).Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
