// Command lscatter-bench regenerates the paper's tables and figures from the
// simulated LScatter system.
//
// Usage:
//
//	lscatter-bench -list
//	lscatter-bench -id F23 [-seed 7]
//	lscatter-bench -all [-parallel 8] [-metrics out.json]
//	lscatter-bench -all -artifact-dir DIR [-resume]
//	lscatter-bench -all -shard-workers http://127.0.0.1:9301,http://127.0.0.1:9302
//	lscatter-bench -impair [-seed 7] [-metrics out.json]
//	lscatter-bench -rtf [-rtf-subframes 2000] [-metrics out.json]
//
// With -all, artifacts run on a worker pool (-parallel N; 0 selects NumCPU,
// 1 — the default — is sequential). The output is deterministic: each
// artifact's seed derives from -seed and its ID, so any worker count prints
// identical tables. -metrics writes a JSON report of per-artifact wall time,
// allocations and waveform-cache hit rate; see docs/BENCHMARKS.md.
//
// -artifact-dir checkpoints every finished artifact into a durable
// content-addressed store as the sweep runs; -resume additionally restores
// already-checkpointed artifacts from it, so a sweep killed after K of N
// artifacts recomputes exactly N−K on restart. -shard-workers fans the sweep
// out to lscatter-worker HTTP processes instead of computing in-process.
// Every executor prints byte-identical tables — the checkpoint/restore
// summary goes to stderr. See docs/DISTRIBUTED.md.
//
// -rtf measures the real-time factor of the transport pipeline at 20 MHz on
// one goroutine (fixed-point streamer headline plus both full-Session lanes)
// and prints the result; it composes with -all and -metrics, in which case
// the measurement lands in the report's "rtf" object. The methodology and
// the recorded targets live in docs/PERFORMANCE.md; `make rtf-check` gates
// regressions against BENCH_R2.json.
//
// -impair is shorthand for the link-resilience sweep (-id R1): the exact
// chain run through the off/mild/moderate/severe fault-injection ladder,
// reporting BER, throughput and carrier-loop re-acquisitions per level; see
// docs/RESILIENCE.md.
//
// -fleet runs the event-driven fleet engine standalone (see docs/FLEET.md):
// a single shared-channel cell of -fleet-tags tags under -fleet-mac
// arbitration for -fleet-minutes simulated minutes, printing the delivery,
// collision and latency report. The city-scale artifact itself is -id C1.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"lscatter/internal/exec"
	"lscatter/internal/experiments"
	"lscatter/internal/fleet"
	"lscatter/internal/store"
)

// writeMetrics serializes the run report to path, atomically — a crash
// mid-write leaves either the previous complete report or the new one.
func writeMetrics(path string, rep *experiments.Report) error {
	return rep.WriteFile(path)
}

// usageError prints a flag-validation failure plus usage and exits 2.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lscatter-bench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		id       = flag.String("id", "", "artifact to regenerate (e.g. T1, F4c, F16, F23, F32, P48)")
		all      = flag.Bool("all", false, "regenerate every artifact")
		list     = flag.Bool("list", false, "list artifact IDs")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 1, "worker count for -all (0 = NumCPU, 1 = sequential)")
		metrics  = flag.String("metrics", "", "write a JSON metrics report to this file")

		artifactDir  = flag.String("artifact-dir", "", "checkpoint -all artifacts into this durable store")
		resume       = flag.Bool("resume", false, "restore already-checkpointed artifacts from -artifact-dir")
		shardWorkers = flag.String("shard-workers", "", "comma-separated lscatter-worker base URLs for -all")
		impaired = flag.Bool("impair", false, "run the link-resilience sweep (shorthand for -id R1)")
		rtf      = flag.Bool("rtf", false, "measure the transport real-time factor at 20 MHz")
		rtfSF    = flag.Int("rtf-subframes", 0, "timed subframes for -rtf (0 = default 2000)")

		fleetRun     = flag.Bool("fleet", false, "run the event-driven fleet engine standalone")
		fleetTags    = flag.Int("fleet-tags", 1_000_000, "fleet size for -fleet")
		fleetMAC     = flag.String("fleet-mac", "capture", "MAC for -fleet: tdma, aloha or capture")
		fleetMinutes = flag.Float64("fleet-minutes", 1, "simulated minutes for -fleet")
		fleetLoad    = flag.Float64("fleet-load", 0.2, "offered load for -fleet, messages per tag per hour")
	)
	flag.Parse()

	// Flag combinations are validated up front, so a misconfigured sweep
	// fails with a usage error before any artifact computes.
	if *parallel < 0 {
		usageError("-parallel must be >= 0 (0 = NumCPU), got %d", *parallel)
	}
	if *resume && *artifactDir == "" {
		usageError("-resume requires -artifact-dir: there is no store to restore from")
	}
	if (*artifactDir != "" || *resume || *shardWorkers != "") && !*all {
		usageError("-artifact-dir, -resume and -shard-workers apply only to -all")
	}

	// runRTF performs the real-time-factor measurement (after any artifact
	// regeneration, so the timed loop runs on a quiet process).
	runRTF := func() *experiments.RTFReport {
		rep := experiments.RunRTF(experiments.RTFConfig{Subframes: *rtfSF, Seed: *seed})
		fmt.Println(rep.Render())
		return rep
	}

	if *impaired {
		if *id != "" && *id != "R1" {
			fmt.Fprintln(os.Stderr, "-impair and -id are mutually exclusive")
			os.Exit(2)
		}
		*id = "R1"
	}

	switch {
	case *fleetRun:
		mac, err := fleet.ParseMAC(*fleetMAC)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		rep := fleet.Simulate(fleet.SimConfig{
			Config:        fleet.Config{MAC: mac, Seed: *seed},
			Tags:          *fleetTags,
			DurationSec:   *fleetMinutes * 60,
			MsgPerTagHour: *fleetLoad,
			// A deterministic 20 dB near/far power spread, so capture
			// arbitration has something to arbitrate. The venue-calibrated
			// link budgets live in artifact C1.
			NoiseW: 1e-13,
			RxPowerW: func(tag int) float64 {
				return 1e-9 * math.Pow(10, -float64(tag%64)/32)
			},
		})
		wall := time.Since(start)
		fmt.Printf("fleet: %d tags, mac=%s, %.1f min simulated\n", rep.Tags, mac, *fleetMinutes)
		fmt.Printf("  offered %d  delivered %d  dropped %d  backlog %d\n",
			rep.Arrivals, rep.Delivered, rep.Dropped, rep.Backlog)
		fmt.Printf("  active slots %d  collisions %d (%.1f%%)  capture wins %d\n",
			rep.ActiveSlots, rep.Collisions, rep.CollisionRate*100, rep.CaptureWins)
		fmt.Printf("  goodput %.0f bps  latency p50/p90/p99 %.0f/%.0f/%.0f ms\n",
			rep.GoodputBps, rep.LatencyMsP50, rep.LatencyMsP90, rep.LatencyMsP99)
		fmt.Printf("  events %d  wall %s (%.0f events/s)\n",
			rep.Events, wall.Round(time.Millisecond), float64(rep.Events)/wall.Seconds())
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
	case *all:
		// The executor stack, innermost out: the local registry pool, or
		// HTTP shards when -shard-workers is set, wrapped in a checkpointing
		// layer when -artifact-dir is set. Output is byte-identical through
		// any stack — the determinism contract RunAllOn documents.
		var ex exec.Executor = &exec.Local{Run: experiments.ExecRunner()}
		if *shardWorkers != "" {
			ex = exec.NewSharded(strings.Split(*shardWorkers, ","), nil)
		}
		var ckpt *exec.Checkpointed
		if *artifactDir != "" {
			logf := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
			st, err := store.Open(*artifactDir, 0, logf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ckpt = &exec.Checkpointed{
				Inner:  ex,
				Store:  st,
				Resume: *resume,
				Key:    experiments.ArtifactKey,
			}
			ex = ckpt
		}
		start := time.Now()
		results, err := experiments.RunAllOn(context.Background(), ex, *seed, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if ckpt != nil {
			// Stderr, so stdout stays byte-identical across executors.
			computed, restored := ckpt.Stats()
			fmt.Fprintf(os.Stderr, "checkpoint: computed %d, restored %d (store %s)\n",
				computed, restored, *artifactDir)
		}
		for _, res := range results {
			fmt.Println(res.Render())
		}
		var rtfRep *experiments.RTFReport
		if *rtf {
			rtfRep = runRTF()
		}
		if *metrics != "" {
			rep := experiments.BuildReport(*seed, *parallel, wall, results)
			rep.RTF = rtfRep
			if err := writeMetrics(*metrics, rep); err != nil {
				fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
				os.Exit(1)
			}
		}
	case *id != "":
		start := time.Now()
		res, ok := experiments.RunOne(*id, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q; known: %s\n", *id, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		fmt.Println(res.Render())
		if *metrics != "" {
			rep := experiments.BuildReport(*seed, 1, time.Since(start), []*experiments.Result{res})
			if err := writeMetrics(*metrics, rep); err != nil {
				fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
				os.Exit(1)
			}
		}
	case *rtf:
		start := time.Now()
		rep := experiments.BuildReport(*seed, 1, 0, nil)
		rep.RTF = runRTF()
		rep.WallSeconds = time.Since(start).Seconds()
		if *metrics != "" {
			if err := writeMetrics(*metrics, rep); err != nil {
				fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
