// Command lscatter-trace inspects the ambient-traffic models: it prints
// occupancy series and Figure 4-style spectrogram summaries for LTE, WiFi
// and LoRa at any venue.
//
// Usage:
//
//	lscatter-trace -tech wifi -venue office -hours 24
//	lscatter-trace -tech lte -spectrogram
package main

import (
	"flag"
	"fmt"
	"os"

	"lscatter/internal/stats"
	"lscatter/internal/traffic"
)

func techFlag(s string) (traffic.Tech, error) {
	switch s {
	case "lte":
		return traffic.LTE, nil
	case "wifi":
		return traffic.WiFi, nil
	case "lora":
		return traffic.LoRa, nil
	}
	return 0, fmt.Errorf("unknown tech %q (lte, wifi, lora)", s)
}

func venueFlag(s string) (traffic.Venue, error) {
	for _, v := range []traffic.Venue{traffic.Home, traffic.Office, traffic.Classroom, traffic.Mall, traffic.Outdoor} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown venue %q (home, office, classroom, mall, outdoor)", s)
}

func main() {
	var (
		techStr  = flag.String("tech", "wifi", "technology: lte, wifi, lora")
		venueStr = flag.String("venue", "home", "venue: home, office, classroom, mall, outdoor")
		hours    = flag.Int("hours", 24, "hours of occupancy to sample")
		spect    = flag.Bool("spectrogram", false, "synthesize a 20 ms IQ snapshot and report measured occupancy")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	tech, err := techFlag(*techStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	venue, err := venueFlag(*venueStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *spect {
		var occ float64
		switch tech {
		case traffic.WiFi:
			occ = traffic.MeasuredOccupancy(traffic.WiFiBandIQ(*seed, 20e-3, 20e6), 20e6)
		case traffic.LoRa:
			occ = traffic.MeasuredOccupancy(traffic.LoRaBandIQ(*seed, 100e-3, 2e6), 2e6)
		default:
			occ = 1.0 // LTE: continuous by construction
		}
		fmt.Printf("%s snapshot: measured frame occupancy %.2f\n", tech, occ)
		return
	}

	m := traffic.NewModel(tech, venue, *seed)
	fmt.Printf("%s occupancy at %s over %d hours:\n", tech, venue, *hours)
	fmt.Println("hour  mean   p10    p90")
	var all []float64
	for h := 0; h < *hours; h++ {
		var xs []float64
		for i := 0; i < 30; i++ {
			xs = append(xs, m.Sample(float64(h)+float64(i)/30))
		}
		all = append(all, xs...)
		fmt.Printf("%4d  %.3f  %.3f  %.3f\n", h, stats.Mean(xs), stats.Percentile(xs, 10), stats.Percentile(xs, 90))
	}
	fmt.Printf("overall mean %.3f\n", stats.Mean(all))
}
