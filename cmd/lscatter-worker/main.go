// Command lscatter-worker is one shard of a distributed lscatter-bench
// sweep: a small HTTP process that computes experiment artifacts on demand.
//
// Usage:
//
//	lscatter-worker [-addr 127.0.0.1:9301] [-artifact-dir DIR] [-disk-max-bytes N]
//
// The protocol is the executor wire format (see docs/DISTRIBUTED.md):
//
//	POST /v1/jobs   {"id": "F23", "seed": 12345} → 200 artifact bytes
//	GET  /healthz   liveness
//	GET  /statsz    served/errors/computed/restored counters
//
// With -artifact-dir the worker checkpoints every computed artifact into the
// shared content-addressed store and answers repeat jobs from it, so several
// workers (and a later `lscatter-bench -resume`) sharing one directory
// compute each artifact exactly once between them — the store's advisory
// file lock is what makes the sharing safe. Without it the worker is a pure
// stateless compute shard.
//
// The bound address is printed on stdout (one line) so harnesses can pass
// -addr 127.0.0.1:0 and read back the kernel-chosen port; logs go to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"lscatter/internal/exec"
	"lscatter/internal/experiments"
	"lscatter/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9301", "listen address (use :0 for a kernel-chosen port)")
		artifactDir = flag.String("artifact-dir", "", "shared durable artifact store; enables checkpoint + restore")
		diskMax     = flag.Int64("disk-max-bytes", 0, "byte budget for -artifact-dir (0 = default 256 MiB)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lscatter-worker: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var ex exec.Executor = &exec.Local{Run: experiments.ExecRunner()}
	if *artifactDir != "" {
		st, err := store.Open(*artifactDir, *diskMax, log.Printf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lscatter-worker: %v\n", err)
			os.Exit(1)
		}
		ex = &exec.Checkpointed{
			Inner:  ex,
			Store:  st,
			Resume: true,
			Key:    experiments.ArtifactKey,
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lscatter-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("http://%s\n", ln.Addr())
	log.Printf("lscatter-worker: serving on http://%s (artifact-dir=%q)", ln.Addr(), *artifactDir)
	if err := http.Serve(ln, exec.NewWorkerHandler(ex)); err != nil {
		fmt.Fprintf(os.Stderr, "lscatter-worker: %v\n", err)
		os.Exit(1)
	}
}
