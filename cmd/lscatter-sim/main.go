// Command lscatter-sim evaluates one LScatter link scenario and prints the
// resulting throughput, BER and link-budget diagnostics.
//
// Usage:
//
//	lscatter-sim -bw 20 -enb-tag 3 -tag-ue 80 -power 10 -exponent 2.2
//	lscatter-sim -bw 1.4 -mode exact -subframes 5
//	lscatter-sim -bw 1.4 -mode exact -impair moderate
//	lscatter-sim -bw 1.4 -mode exact -cfo 800 -sfo-ppm 2 -adc-bits 8
//	lscatter-sim -sweep 10:200:10 -parallel 0
//
// A -sweep evaluates one link per distance step; -parallel fans the points
// out over a worker pool (0 = NumCPU). Every point is seeded independently,
// so the printed table is identical at any worker count.
//
// Fault injection (exact mode only): -impair selects a named level of the
// resilience ladder (off, mild, moderate, severe; see docs/RESILIENCE.md),
// and -cfo/-sfo-ppm/-adc-bits/-jitter-rms switch on individual stages on
// top of (or instead of) the level.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"lscatter/internal/channel"
	"lscatter/internal/core"
	"lscatter/internal/experiments"
	"lscatter/internal/impair"
	"lscatter/internal/ltephy"
)

// sweepPoints evaluates one core.Run per distance on a pool of workers and
// returns the reports in point order.
func sweepPoints(cfgs []core.LinkConfig, workers int) []core.LinkReport {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	reports := make([]core.LinkReport, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i] = core.Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return reports
}

// impairmentFor assembles the fault-injection config from the -impair level
// and the individual stage flags (which override or extend the level). It
// returns nil when no fault injection is requested.
func impairmentFor(level string, cfoHz, sfoPPM float64, adcBits int, jitterRMS float64) (*impair.Config, error) {
	var ic impair.Config
	switch level {
	case "", "off":
	default:
		found := false
		for _, lvl := range experiments.ImpairmentLevels() {
			if lvl.Name == level {
				ic = lvl.Impair
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown impairment level %q (use off, mild, moderate or severe)", level)
		}
	}
	if cfoHz != 0 {
		ic.CFO = impair.CFOConfig{Enabled: true, OffsetHz: cfoHz}
	}
	if sfoPPM != 0 {
		ic.SFO = impair.SFOConfig{Enabled: true, PPM: sfoPPM}
	}
	if adcBits != 0 {
		ic.ADC = impair.ADCConfig{Enabled: true, Bits: adcBits}
	}
	if jitterRMS != 0 {
		ic.Jitter = impair.JitterConfig{Enabled: true, RMSSamples: jitterRMS}
	}
	if !ic.Active() {
		return nil, nil
	}
	return &ic, nil
}

func bandwidthFlag(v string) (ltephy.Bandwidth, error) {
	for _, bw := range ltephy.Bandwidths {
		if v+"MHz" == bw.String() {
			return bw, nil
		}
	}
	return 0, fmt.Errorf("unknown bandwidth %q (use 1.4, 3, 5, 10, 15 or 20)", v)
}

func main() {
	var (
		bwStr     = flag.String("bw", "20", "LTE bandwidth in MHz (1.4, 3, 5, 10, 15, 20)")
		enbTag    = flag.Float64("enb-tag", 3, "eNodeB-to-tag distance in feet")
		tagUE     = flag.Float64("tag-ue", 3, "tag-to-UE distance in feet")
		enbUE     = flag.Float64("enb-ue", 0, "eNodeB-to-UE distance in feet (default: sum of the hops)")
		power     = flag.Float64("power", 10, "eNodeB transmit power in dBm")
		exponent  = flag.Float64("exponent", 2.2, "path-loss exponent")
		nlos      = flag.Bool("nlos", false, "non-line-of-sight fading")
		mode      = flag.String("mode", "analytic", "evaluation mode: analytic or exact")
		subframes = flag.Int("subframes", 5, "subframes to simulate in exact mode")
		seed      = flag.Uint64("seed", 1, "random seed")
		sweep     = flag.String("sweep", "", "sweep tag-to-UE distance: \"start:stop:step\" in feet, prints a table")
		parallel  = flag.Int("parallel", 1, "worker count for -sweep (0 = NumCPU, 1 = sequential)")
		level     = flag.String("impair", "", "impairment level for exact mode: off, mild, moderate or severe")
		cfoHz     = flag.Float64("cfo", 0, "carrier-frequency offset in Hz (exact mode; enables the CFO stage)")
		sfoPPM    = flag.Float64("sfo-ppm", 0, "sampling clock offset in ppm (exact mode; enables the SFO stage)")
		adcBits   = flag.Int("adc-bits", 0, "ADC resolution in bits (exact mode; enables the ADC stage)")
		jitterRMS = flag.Float64("jitter-rms", 0, "tag timing jitter RMS in basic-timing units (exact mode)")
	)
	flag.Parse()

	bw, err := bandwidthFlag(*bwStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.DefaultLinkConfig(bw)
	cfg.TxPowerDBm = *power
	cfg.ENodeBToTagM = channel.FeetToMeters(*enbTag)
	cfg.TagToUEM = channel.FeetToMeters(*tagUE)
	if *enbUE > 0 {
		cfg.ENodeBToUEM = channel.FeetToMeters(*enbUE)
	} else {
		cfg.ENodeBToUEM = channel.FeetToMeters(*enbTag + *tagUE)
	}
	cfg.PathLossExponent = *exponent
	cfg.LoS = !*nlos
	cfg.Seed = *seed
	cfg.Subframes = *subframes
	if *mode == "exact" {
		cfg.Mode = core.Exact
	}

	ic, err := impairmentFor(*level, *cfoHz, *sfoPPM, *adcBits, *jitterRMS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if ic != nil {
		if cfg.Mode != core.Exact {
			fmt.Fprintln(os.Stderr, "impairments need -mode exact (the analytic model has no waveform to corrupt)")
			os.Exit(2)
		}
		cfg.Impair = ic
	}

	if *sweep != "" {
		var start, stop, step float64
		if _, err := fmt.Sscanf(*sweep, "%g:%g:%g", &start, &stop, &step); err != nil || step <= 0 || stop < start {
			fmt.Fprintf(os.Stderr, "bad sweep %q, want start:stop:step in feet\n", *sweep)
			os.Exit(2)
		}
		var dists []float64
		var cfgs []core.LinkConfig
		for d := start; d <= stop+1e-9; d += step {
			c := cfg
			c.TagToUEM = channel.FeetToMeters(d)
			c.ENodeBToUEM = channel.FeetToMeters(*enbTag + d)
			dists = append(dists, d)
			cfgs = append(cfgs, c)
		}
		reports := sweepPoints(cfgs, *parallel)
		fmt.Printf("tag-UE (ft)  throughput (Mbps)  BER        scatter SNR (dB)\n")
		for i, rep := range reports {
			fmt.Printf("%-11.0f  %-17.3f  %-9.3g  %.1f\n",
				dists[i], rep.ThroughputBps/1e6, rep.BER, rep.ScatterSNRdB)
		}
		return
	}

	rep := core.Run(cfg)
	fmt.Printf("LScatter link: %s, %.0f dBm, eNB-tag %.0f ft, tag-UE %.0f ft, exponent %.1f\n",
		bw, *power, *enbTag, *tagUE, *exponent)
	fmt.Printf("  tag hears eNodeB : %v\n", rep.TagHearsENodeB)
	fmt.Printf("  LTE decode       : %v (direct SNR %.1f dB)\n", rep.LTEOK, rep.DirectSNRdB)
	fmt.Printf("  preamble sync    : %v\n", rep.Synced)
	fmt.Printf("  scatter unit SNR : %.1f dB\n", rep.ScatterSNRdB)
	fmt.Printf("  BER              : %.3g\n", rep.BER)
	fmt.Printf("  raw rate         : %.2f Mbps\n", rep.RawRateBps/1e6)
	fmt.Printf("  throughput       : %.2f Mbps\n", rep.ThroughputBps/1e6)
	if rep.BitsCompared > 0 {
		fmt.Printf("  bits compared    : %d (exact mode)\n", rep.BitsCompared)
	}
}
