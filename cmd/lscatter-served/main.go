// Command lscatter-served is the LScatter deployment-simulation server: a
// long-running JSON API that accepts deployment specs (venue, traffic model,
// tag fleet, impairment ladder, lane, seed), runs them as background jobs on
// the deterministic experiments worker pool, and serves cached, byte-stable
// results from a content-addressed artifact store keyed by (spec-hash, seed).
//
// Usage:
//
//	lscatter-served [-addr 127.0.0.1:8080] [-workers 2] [-job-workers 4]
//	                [-queue 64] [-store 256]
//	                [-artifact-dir DIR] [-disk-max-bytes 268435456]
//
// With -artifact-dir the artifact store becomes durable: finished result
// bodies are written through to checksummed files under DIR and promoted
// back into the in-memory LRU on demand, so a restart — graceful or not —
// keeps the cache warm and previously computed specs are served
// byte-identically with zero recompute. Concurrent identical submissions
// coalesce onto one in-flight run, and GET /v1/runs/{id}/events streams
// per-tag progress rows over SSE.
//
// The bound address is printed on stdout ("listening on http://...") so
// callers that bind an ephemeral port (-addr 127.0.0.1:0) can discover it —
// the make served-check smoke test does exactly that. SIGINT/SIGTERM start a
// graceful shutdown: the listener stops taking requests, queued and running
// jobs drain (up to a timeout), then the process exits 0.
//
// API reference and the determinism/caching contract: docs/SERVING.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lscatter/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers     = flag.Int("workers", 2, "concurrent jobs")
		jobWorkers  = flag.Int("job-workers", 4, "per-job tag-evaluation parallelism (never affects results)")
		queue       = flag.Int("queue", 64, "queued-job backlog bound")
		store       = flag.Int("store", 256, "in-memory artifact-store entry bound")
		artifactDir = flag.String("artifact-dir", "", "durable artifact directory (empty = in-memory only)")
		diskMax     = flag.Int64("disk-max-bytes", 256<<20, "on-disk artifact-store byte bound")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	api, err := serve.NewServer(serve.Options{
		Workers:      *workers,
		JobWorkers:   *jobWorkers,
		QueueDepth:   *queue,
		StoreEntries: *store,
		ArtifactDir:  *artifactDir,
		DiskMaxBytes: *diskMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lscatter-served: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lscatter-served: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lscatter-served listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "lscatter-served: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("lscatter-served: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lscatter-served: http shutdown: %v\n", err)
	}
	if err := api.Manager().Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "lscatter-served: job drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("lscatter-served: bye")
}
