module lscatter

go 1.22
