# LScatter build targets. Everything is stdlib Go; no external tools needed.

GO ?= go

.PHONY: all test vet bench figures examples cover clean

all: vet test

test:
	$(GO) test ./...

vet:
	$(GO) build ./... && $(GO) vet ./...

# Regenerate every paper table/figure, the ablations and the validation.
figures:
	$(GO) run ./cmd/lscatter-bench -all

# One benchmark per paper artifact plus the signal-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/continuousauth
	$(GO) run ./examples/spectrumsurvey
	$(GO) run ./examples/multitag

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
