# LScatter build targets. Everything is stdlib Go; no external tools needed.

GO ?= go

.PHONY: all ci test race vet docs-check fuzz-smoke golden-update resilience bench bench-compare rtf rtf-check fleet-check dist-check figures examples examples-check served-check served-load cover clean

all: vet test

# The full gate a PR must pass: vet, the suite under the race detector, the
# doc-comment check, the example-stdout goldens, the real-time-factor
# regression gate, the fleet-engine scaling gate, both server smokes
# (end-to-end crash/restart, then load with required coalesce + disk-hit
# evidence) and the distributed-execution smoke. Run it before pushing.
ci: vet race docs-check examples-check rtf-check fleet-check served-check served-load dist-check

test:
	$(GO) test ./...

# Full suite under the race detector; the experiment pool and waveform cache
# must stay race-clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) build ./... && $(GO) vet ./...

# Every package and command must carry a doc comment (see tools/docscheck.sh).
docs-check:
	sh tools/docscheck.sh

# 30 seconds of native fuzzing per target on top of the committed corpora
# (testdata/fuzz/). The receiver and the frame decoder must never panic on
# arbitrary input; see docs/RESILIENCE.md.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/ue -run='^$$' -fuzz=FuzzCellSearch -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ue -run='^$$' -fuzz=FuzzEstimateCFO -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/scatterframe -run='^$$' -fuzz=FuzzDecode$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/scatterframe -run='^$$' -fuzz=FuzzDecodeSoft -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dsp -run='^$$' -fuzz=FuzzCorrelatorEquivalence -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fxp -run='^$$' -fuzz=FuzzFxpRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzSpecDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^$$' -fuzz=FuzzArtifactDecode -fuzztime=$(FUZZTIME)

# Regenerate the golden conformance vectors (testdata/*.json) after an
# intentional waveform or RNG change; review the diff like code.
golden-update:
	$(GO) test -run TestGolden -update .

# The link-resilience sweep: the exact chain through the fault-injection
# ladder (see docs/RESILIENCE.md).
resilience:
	$(GO) run ./cmd/lscatter-bench -impair

# Regenerate every paper table/figure, the ablations and the validation.
figures:
	$(GO) run ./cmd/lscatter-bench -all

# One benchmark per paper artifact plus the signal-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Diff two `lscatter-bench -metrics` reports (override OLD/NEW to compare
# other runs); fails on an allocation regression beyond the threshold in
# tools/benchdiff.
OLD ?= BENCH_R2.json
NEW ?= BENCH_R3.json
bench-compare:
	sh tools/benchdiff.sh $(OLD) $(NEW)

# Print the transport real-time factor at 20 MHz (fixed-point streamer
# headline plus both full-Session lanes); see docs/PERFORMANCE.md.
rtf:
	$(GO) run ./cmd/lscatter-bench -rtf

# Fail when the streamer RTF regresses more than 10% against the recorded
# baseline in BENCH_R2.json (override RTF_BASELINE to gate against another
# report). The absolute 10x target is advisory here because CI hardware
# differs; enforce it with `go run ./tools/rtfcheck -require-target`.
RTF_BASELINE ?= BENCH_R3.json
rtf-check:
	$(GO) run ./tools/rtfcheck $(RTF_BASELINE)

# The fleet-engine gate: fleet and simlink tests under the race detector,
# then the parked-heavy scaling smoke — a 10x-larger fleet at fixed aggregate
# load must not cost more than 3x the wall time (see docs/FLEET.md).
fleet-check:
	$(GO) test -race -count=1 ./internal/fleet ./internal/simlink
	$(GO) run ./tools/fleetcheck

# Distributed-execution smoke: two lscatter-worker shards over one shared
# artifact directory; the sharded `-all` sweep must print byte-identical
# output to the local sweep with every artifact computed exactly once across
# the workers and zero restores on the cold store (see docs/DISTRIBUTED.md).
dist-check:
	$(GO) build -o bin/lscatter-bench ./cmd/lscatter-bench
	$(GO) build -o bin/lscatter-worker ./cmd/lscatter-worker
	$(GO) run ./tools/distcheck -bench bin/lscatter-bench -worker bin/lscatter-worker

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/continuousauth
	$(GO) run ./examples/spectrumsurvey
	$(GO) run ./examples/multitag

# Golden-stdout smoke tests for every example (testdata/examples/*.txt);
# regenerate after an intentional output change with
# `go test -run TestExampleStdout -update .` and review the diff.
examples-check:
	$(GO) test -run TestExampleStdout -count=1 .

# End-to-end smoke of the deployment-simulation server binary: build it,
# launch on an ephemeral port, healthz + one tiny run over real TCP, then a
# SIGTERM graceful-drain exit — followed by the durability phase: SIGKILL
# mid-life and a restart that must serve the same body from disk without
# recompute (see docs/SERVING.md).
served-check:
	$(GO) build -o bin/lscatter-served ./cmd/lscatter-served
	$(GO) run ./tools/servedcheck -bin bin/lscatter-served

# Load smoke: a few seconds of mixed bursts (concurrent-identical, duplicate,
# unique, canceled) against a freshly launched server with a 1-entry memory
# store over a temp artifact dir. Fails unless coalesced joins AND disk hits
# both actually happened; prints sustained runs/sec (baseline in
# docs/BENCHMARKS.md).
LOADTIME ?= 5s
served-load:
	$(GO) build -o bin/lscatter-served ./cmd/lscatter-served
	$(GO) run ./tools/servedload -bin bin/lscatter-served -duration $(LOADTIME) -require-coalesce -require-disk-hits

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
