# LScatter build targets. Everything is stdlib Go; no external tools needed.

GO ?= go

.PHONY: all test race vet docs-check bench figures examples cover clean

all: vet test

test:
	$(GO) test ./...

# Full suite under the race detector; the experiment pool and waveform cache
# must stay race-clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) build ./... && $(GO) vet ./...

# Every package and command must carry a doc comment (see tools/docscheck.sh).
docs-check:
	sh tools/docscheck.sh

# Regenerate every paper table/figure, the ablations and the validation.
figures:
	$(GO) run ./cmd/lscatter-bench -all

# One benchmark per paper artifact plus the signal-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/continuousauth
	$(GO) run ./examples/spectrumsurvey
	$(GO) run ./examples/multitag

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
